//! Bracketing root finders used by quantile inversions and by OPTWIN's
//! optimal-cut search.

use crate::{Result, StatsError};

/// Default relative tolerance for the root finders.
pub const DEFAULT_TOL: f64 = 1e-12;
/// Default iteration cap for the root finders.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// The bracket must satisfy `f(lo) * f(hi) <= 0`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidBracket`] if the bracket does not contain a
/// sign change, or [`StatsError::ConvergenceFailure`] if the tolerance is not
/// met within `max_iter` iterations.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(StatsError::InvalidBracket { lo, hi });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo).abs() < tol * (1.0 + mid.abs()) {
            return Ok(mid);
        }
        if flo * fmid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    Err(StatsError::ConvergenceFailure {
        routine: "bisect",
        iterations: max_iter,
    })
}

/// Finds a root of `f` in `[lo, hi]` using Brent's method (inverse quadratic
/// interpolation with bisection safeguards).
///
/// # Errors
///
/// Returns [`StatsError::InvalidBracket`] if the bracket does not contain a
/// sign change, or [`StatsError::ConvergenceFailure`] if the tolerance is not
/// met within `max_iter` iterations.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(StatsError::InvalidBracket { lo, hi });
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;

    for _ in 0..max_iter {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate so far.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation.
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let q0 = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * q0 * (q0 - r) - (b - a) * (r - 1.0));
                q = (q0 - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        if d.abs() > tol1 {
            b += d;
        } else {
            b += if xm > 0.0 { tol1 } else { -tol1 };
        }
        fb = f(b);
        if (fb > 0.0) == (fc > 0.0) {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(StatsError::ConvergenceFailure {
        routine: "brent",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt_two() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(StatsError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn brent_finds_cubic_root() {
        let root = brent(|x| x * x * x - 2.0 * x - 5.0, 2.0, 3.0, 1e-13, 200).unwrap();
        // Classical test function; root ≈ 2.0945514815423265
        assert!((root - 2.094_551_481_542_326_5).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_transcendental_root() {
        let root = brent(|x| x.exp() - 3.0 * x, 0.0, 1.0, 1e-13, 200).unwrap();
        assert!((root.exp() - 3.0 * root).abs() < 1e-9);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(StatsError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn brent_handles_root_at_bracket_edge() {
        assert_eq!(brent(|x| x, 0.0, 5.0, 1e-12, 100).unwrap(), 0.0);
    }
}
