//! Wilcoxon signed-rank test for paired samples.
//!
//! The OPTWIN paper (§4.1) compares the F1-scores of OPTWIN against ADWIN and
//! STEPD across experiments with a one-tailed Wilcoxon signed-rank test at
//! α = 0.05. This module implements the test with the exact null
//! distribution for small samples (n ≤ 25 after removing zero differences)
//! and the normal approximation with tie correction for larger samples.

use crate::descriptive::average_ranks;
use crate::dist::Normal;
use crate::{Result, StatsError};

/// The alternative hypothesis of the test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// The first sample tends to be larger than the second.
    Greater,
    /// The first sample tends to be smaller than the second.
    Less,
    /// The samples differ in either direction.
    TwoSided,
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of the positive differences (`W+`).
    pub w_plus: f64,
    /// Sum of ranks of the negative differences (`W−`).
    pub w_minus: f64,
    /// Number of non-zero differences used by the test.
    pub n_used: usize,
    /// p-value for the requested alternative.
    pub p_value: f64,
    /// Whether the exact null distribution was used (vs. normal approx.).
    pub exact: bool,
}

/// Maximum `n` for which the exact distribution is enumerated.
const EXACT_LIMIT: usize = 25;

/// Wilcoxon signed-rank test on paired samples `a` and `b`.
///
/// Zero differences are discarded (the standard Wilcoxon procedure). Ties in
/// the absolute differences receive average ranks.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if the samples have different
/// lengths, or if fewer than one non-zero difference remains.
pub fn wilcoxon_signed_rank(
    a: &[f64],
    b: &[f64],
    alternative: Alternative,
) -> Result<WilcoxonResult> {
    if a.len() != b.len() {
        return Err(StatsError::InvalidParameter {
            name: "samples",
            value: b.len() as f64,
            constraint: "paired samples must have equal length",
        });
    }
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return Err(StatsError::InsufficientData {
            required: 1,
            available: 0,
        });
    }

    let abs_diffs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs_diffs);

    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }

    let has_ties = {
        let mut sorted = abs_diffs.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        sorted.windows(2).any(|w| w[0] == w[1])
    };

    // Exact distribution only enumerable without ties (integer rank sums).
    let (p_value, exact) = if n <= EXACT_LIMIT && !has_ties {
        (exact_p_value(n, w_plus, alternative), true)
    } else {
        (normal_p_value(n, &ranks, w_plus, alternative), false)
    };

    Ok(WilcoxonResult {
        w_plus,
        w_minus,
        n_used: n,
        p_value: p_value.clamp(0.0, 1.0),
        exact,
    })
}

/// Exact p-value by enumerating the null distribution of W+ via dynamic
/// programming over rank subsets.
fn exact_p_value(n: usize, w_plus: f64, alternative: Alternative) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of subsets of {1..n} with rank sum s.
    let mut counts = vec![0.0f64; max_sum + 1];
    counts[0] = 1.0;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total: f64 = 2.0f64.powi(n as i32);
    let w = w_plus.round() as usize;

    let p_ge = |threshold: usize| -> f64 {
        counts[threshold.min(max_sum)..=max_sum].iter().sum::<f64>() / total
    };
    let p_le =
        |threshold: usize| -> f64 { counts[..=threshold.min(max_sum)].iter().sum::<f64>() / total };

    match alternative {
        Alternative::Greater => p_ge(w),
        Alternative::Less => p_le(w),
        Alternative::TwoSided => {
            let one_sided = p_ge(w).min(p_le(w));
            (2.0 * one_sided).min(1.0)
        }
    }
}

/// Normal approximation with tie correction and continuity correction.
fn normal_p_value(n: usize, ranks: &[f64], w_plus: f64, alternative: Alternative) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Variance with tie correction computed directly from the rank values:
    // var = sum(r_i^2) / 4 is equivalent to the usual tie-corrected formula.
    let var: f64 = ranks.iter().map(|r| r * r).sum::<f64>() / 4.0;
    if var <= 0.0 {
        return 1.0;
    }
    let sd = var.sqrt();
    match alternative {
        Alternative::Greater => 1.0 - Normal::std_cdf((w_plus - mean - 0.5) / sd),
        Alternative::Less => Normal::std_cdf((w_plus - mean + 0.5) / sd),
        Alternative::TwoSided => {
            let z = (w_plus - mean).abs() - 0.5;
            (2.0 * (1.0 - Normal::std_cdf(z / sd))).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_mismatched_or_empty() {
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0], Alternative::TwoSided).is_err());
        // All differences zero.
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0], Alternative::TwoSided).is_err());
    }

    #[test]
    fn classic_textbook_example() {
        // Example pairs with known exact two-sided p-value.
        // Differences: 8 non-zero values, no ties.
        let a = [
            125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0,
        ];
        let b = [
            110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0,
        ];
        let r = wilcoxon_signed_rank(&a, &b, Alternative::TwoSided).unwrap();
        assert_eq!(r.n_used, 9);
        // W+ = 27, W- = 18 for this classical dataset (after dropping the tie).
        assert!((r.w_plus - 27.0).abs() < 1e-9, "w_plus = {}", r.w_plus);
        assert!((r.w_minus - 18.0).abs() < 1e-9);
        assert!(r.p_value > 0.4 && r.p_value < 0.8, "p = {}", r.p_value);
    }

    #[test]
    fn one_sided_detects_systematic_improvement() {
        // "OPTWIN F1" consistently above "baseline F1" across 10 experiments.
        let optwin = [0.94, 0.98, 1.00, 0.99, 0.86, 0.93, 0.97, 0.95, 0.88, 0.91];
        let adwin = [0.60, 1.00, 0.52, 0.50, 0.46, 0.65, 0.96, 0.50, 0.52, 0.46];
        let r = wilcoxon_signed_rank(&optwin, &adwin, Alternative::Greater).unwrap();
        assert!(r.p_value < 0.05, "p = {}", r.p_value);
        // The reverse direction should not be significant.
        let r_rev = wilcoxon_signed_rank(&adwin, &optwin, Alternative::Greater).unwrap();
        assert!(r_rev.p_value > 0.9);
    }

    #[test]
    fn exact_and_approx_agree_reasonably() {
        let a: Vec<f64> = (0..20).map(|i| 0.5 + 0.02 * (i as f64)).collect();
        let b: Vec<f64> = (0..20)
            .map(|i| 0.48 + 0.021 * (i as f64) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let exact = wilcoxon_signed_rank(&a, &b, Alternative::TwoSided).unwrap();
        assert!(exact.exact);
        // Force the approximation path by replicating the data beyond the
        // exact limit.
        let a_big: Vec<f64> = a.iter().chain(a.iter()).copied().collect();
        let b_big: Vec<f64> = b.iter().chain(b.iter()).copied().collect();
        let approx = wilcoxon_signed_rank(&a_big, &b_big, Alternative::TwoSided).unwrap();
        assert!(!approx.exact);
        assert!((0.0..=1.0).contains(&approx.p_value));
    }

    #[test]
    fn w_plus_w_minus_partition_total() {
        let a = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let b = [2.0, 2.0, 3.0, 5.0, 1.0, 2.7];
        let r = wilcoxon_signed_rank(&a, &b, Alternative::TwoSided).unwrap();
        let n = r.n_used as f64;
        assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn greater_and_less_are_complementary_directions() {
        let a = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let g = wilcoxon_signed_rank(&a, &b, Alternative::Greater).unwrap();
        let l = wilcoxon_signed_rank(&a, &b, Alternative::Less).unwrap();
        assert!(g.p_value < 0.05);
        assert!(l.p_value > 0.95);
    }
}
