//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used by the KSWIN extension detector, which compares the empirical
//! distribution of a recent sample window against a uniformly drawn sample
//! of older observations.

use crate::{Result, StatsError};

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTestResult {
    /// The KS statistic: the supremum distance between the two empirical
    /// CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Sorts copies of both samples and delegates to [`ks_two_sample_sorted`];
/// callers that already maintain their samples in sorted order (KSWIN's
/// incrementally sorted sliding window) should call the sorted variant
/// directly and skip the `O(n log n)` work entirely.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample is empty.
pub fn ks_two_sample(sample1: &[f64], sample2: &[f64]) -> Result<KsTestResult> {
    if sample1.is_empty() || sample2.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            available: 0,
        });
    }
    let mut a: Vec<f64> = sample1.to_vec();
    let mut b: Vec<f64> = sample2.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    b.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    ks_two_sample_sorted(&a, &b)
}

/// Two-sample Kolmogorov–Smirnov test over samples that are **already sorted
/// ascending**: a single linear merge-scan of the two empirical CDFs.
///
/// The statistic depends only on the order statistics, so any permutation of
/// tied values (including `-0.0` vs `0.0`, which compare equal) yields the
/// identical result — which is what lets KSWIN maintain its samples
/// incrementally instead of re-sorting per element.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample is empty.
pub fn ks_two_sample_sorted(a: &[f64], b: &[f64]) -> Result<KsTestResult> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            available: 0,
        });
    }
    let n1 = a.len();
    let n2 = b.len();
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x1 = a[i];
        let x2 = b[j];
        let x = x1.min(x2);
        while i < n1 && a[i] <= x {
            i += 1;
        }
        while j < n2 && b[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(KsTestResult {
        statistic: d,
        p_value: kolmogorov_survival(lambda),
    })
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)`.
fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_samples() {
        assert!(ks_two_sample(&[], &[1.0]).is_err());
        assert!(ks_two_sample(&[1.0], &[]).is_err());
    }

    #[test]
    fn identical_samples_have_high_p() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let r = ks_two_sample(&xs, &xs).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..50).map(|i| 10.0 + i as f64 * 0.01).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn shifted_distributions_detected() {
        // Deterministic "uniform" grids with a clear shift.
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let b: Vec<f64> = (0..200).map(|i| 0.3 + i as f64 / 200.0).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic > 0.25);
        assert!(r.p_value < 1e-4);
    }

    #[test]
    fn statistic_symmetric() {
        let a = [0.1, 0.4, 0.35, 0.8, 0.23];
        let b = [0.2, 0.5, 0.9, 0.7];
        let r1 = ks_two_sample(&a, &b).unwrap();
        let r2 = ks_two_sample(&b, &a).unwrap();
        assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    fn sorted_variant_matches_unsorted_bit_for_bit() {
        // Unsorted, tied, signed-zero-laden samples: the public entry point
        // (sort + merge-scan) and the pre-sorted path must agree exactly.
        let a = [0.4, -0.0, 0.0, 0.4, 1e300, 5e-324, 0.4, -1.0];
        let b = [0.2, 0.2, -0.0, 0.9, 0.4, -5e-324];
        let via_sort = ks_two_sample(&a, &b).unwrap();
        let mut sa = a.to_vec();
        let mut sb = b.to_vec();
        sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
        sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let direct = ks_two_sample_sorted(&sa, &sb).unwrap();
        assert_eq!(via_sort.statistic.to_bits(), direct.statistic.to_bits());
        assert_eq!(via_sort.p_value.to_bits(), direct.p_value.to_bits());
        // Swapping tied equal values (a different permutation of the
        // multiset) cannot change the result.
        let sa_perm: Vec<f64> = {
            let mut v = sa.clone();
            // -0.0 and 0.0 compare equal; exchange them.
            let zeros: Vec<usize> = v
                .iter()
                .enumerate()
                .filter(|(_, x)| **x == 0.0)
                .map(|(i, _)| i)
                .collect();
            if zeros.len() >= 2 {
                v.swap(zeros[0], zeros[1]);
            }
            v
        };
        let permuted = ks_two_sample_sorted(&sa_perm, &sb).unwrap();
        assert_eq!(permuted.statistic.to_bits(), direct.statistic.to_bits());
        assert_eq!(permuted.p_value.to_bits(), direct.p_value.to_bits());
    }

    #[test]
    fn sorted_variant_rejects_empty_samples() {
        assert!(ks_two_sample_sorted(&[], &[1.0]).is_err());
        assert!(ks_two_sample_sorted(&[1.0], &[]).is_err());
    }

    #[test]
    fn kolmogorov_survival_monotone() {
        let mut prev = 1.0;
        for i in 0..40 {
            let lambda = i as f64 * 0.1;
            let q = kolmogorov_survival(lambda);
            assert!(q <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&q));
            prev = q;
        }
    }
}
