//! Variance-ratio F-test.

use crate::descriptive;
use crate::dist::FisherF;
use crate::{Result, StatsError};

/// Result of a variance-ratio F-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FTestResult {
    /// The observed ratio `var1 / var2` (Equation 6 of the paper uses
    /// `σ²_new / σ²_hist`).
    pub f_value: f64,
    /// Numerator degrees of freedom (`n1 − 1`).
    pub df1: f64,
    /// Denominator degrees of freedom (`n2 − 1`).
    pub df2: f64,
    /// Upper-tail p-value `P(F >= f_value)`.
    pub p_value_upper: f64,
}

/// F-test from pre-computed sample variances.
///
/// `var1`/`n1` describe the numerator sample, `var2`/`n2` the denominator
/// sample. A small stabiliser `eta` may be added by the caller before
/// invoking this function (OPTWIN adds `η = 1e-5` to both standard
/// deviations); this function performs the plain ratio test.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer than
/// two observations, or [`StatsError::InvalidParameter`] if `var2` is zero
/// (an undefined ratio).
pub fn variance_ratio_test_from_stats(
    var1: f64,
    n1: usize,
    var2: f64,
    n2: usize,
) -> Result<FTestResult> {
    if n1 < 2 || n2 < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            available: n1.min(n2),
        });
    }
    if var2 <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "var2",
            value: var2,
            constraint:
                "denominator variance must be positive (add a stabiliser such as OPTWIN's eta)",
        });
    }
    let df1 = (n1 - 1) as f64;
    let df2 = (n2 - 1) as f64;
    let f_value = var1 / var2;
    let dist = FisherF::new(df1, df2)?;
    Ok(FTestResult {
        f_value,
        df1,
        df2,
        p_value_upper: dist.upper_tail_p_value(f_value),
    })
}

/// F-test from raw samples (`sample1` is the numerator).
///
/// # Errors
///
/// Same conditions as [`variance_ratio_test_from_stats`].
pub fn variance_ratio_test(sample1: &[f64], sample2: &[f64]) -> Result<FTestResult> {
    if sample1.len() < 2 || sample2.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            available: sample1.len().min(sample2.len()),
        });
    }
    let v1 = descriptive::sample_variance(sample1).expect("len >= 2");
    let v2 = descriptive::sample_variance(sample2).expect("len >= 2");
    variance_ratio_test_from_stats(v1, sample1.len(), v2, sample2.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_insufficient_or_degenerate_input() {
        assert!(variance_ratio_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(variance_ratio_test_from_stats(1.0, 10, 0.0, 10).is_err());
    }

    #[test]
    fn equal_variances_give_ratio_one() {
        let a = [0.1, 0.2, 0.3, 0.4, 0.5];
        let r = variance_ratio_test(&a, &a).unwrap();
        assert!((r.f_value - 1.0).abs() < 1e-12);
        assert!(r.p_value_upper > 0.4);
    }

    #[test]
    fn larger_numerator_variance_small_p() {
        // Paper's motivating example: same mean, very different spread.
        let w0 = [0.3, 0.7, 0.7, 0.3, 0.3, 0.7, 0.5, 0.5];
        let w1 = [0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let r = variance_ratio_test(&w1, &w0).unwrap();
        assert!(r.f_value > 2.0, "f = {}", r.f_value);
        assert!(r.p_value_upper < 0.15);
        // And the reverse direction has a large upper-tail p-value.
        let rev = variance_ratio_test(&w0, &w1).unwrap();
        assert!(rev.p_value_upper > 0.85);
    }

    #[test]
    fn reference_value() {
        // var ratio 4.0 with df (9, 9): P(F >= 4.0) ≈ 0.0255
        let r = variance_ratio_test_from_stats(4.0, 10, 1.0, 10).unwrap();
        assert!(
            (r.p_value_upper - 0.0255).abs() < 2e-3,
            "p = {}",
            r.p_value_upper
        );
        assert_eq!(r.df1, 9.0);
        assert_eq!(r.df2, 9.0);
    }
}
