//! Welch's unequal-variance t-test.

use crate::descriptive;
use crate::dist::{ContinuousDistribution, StudentsT};
use crate::{Result, StatsError};

/// Result of a two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The observed t statistic (Equation 3 of the paper).
    pub t_value: f64,
    /// Welch–Satterthwaite degrees of freedom (Equation 12 of the paper).
    pub df: f64,
    /// Two-sided p-value `P(|T| >= |t_value|)`.
    pub p_value_two_sided: f64,
    /// Upper-tail p-value `P(T >= t_value)` (one-sided, "first sample has a
    /// larger mean" alternative).
    pub p_value_upper: f64,
}

/// Welch–Satterthwaite degrees of freedom for two samples described by their
/// variances and sizes.
///
/// Returns 1.0 (the most conservative value) if the denominator degenerates,
/// which can only happen when both sample variances are exactly zero.
#[must_use]
pub fn welch_degrees_of_freedom(var1: f64, n1: f64, var2: f64, n2: f64) -> f64 {
    let a = var1 / n1;
    let b = var2 / n2;
    let num = (a + b) * (a + b);
    let den = a * a / (n1 - 1.0) + b * b / (n2 - 1.0);
    if den <= 0.0 || !den.is_finite() {
        1.0
    } else {
        (num / den).max(1.0)
    }
}

/// Welch's t-test from pre-computed sample statistics.
///
/// `mean1`, `var1`, `n1` describe the first sample (OPTWIN's `W_hist`),
/// `mean2`, `var2`, `n2` the second sample (`W_new`). Variances are the
/// unbiased sample variances.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer than
/// two observations.
pub fn welch_t_test_from_stats(
    mean1: f64,
    var1: f64,
    n1: usize,
    mean2: f64,
    var2: f64,
    n2: usize,
) -> Result<TTestResult> {
    if n1 < 2 || n2 < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            available: n1.min(n2),
        });
    }
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let se = (var1 / n1f + var2 / n2f).sqrt();
    let t_value = if se > 0.0 {
        (mean1 - mean2) / se
    } else if mean1 == mean2 {
        0.0
    } else if mean1 > mean2 {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    let df = welch_degrees_of_freedom(var1, n1f, var2, n2f);
    let dist = StudentsT::new(df)?;
    let (p_two, p_upper) = if t_value.is_finite() {
        (dist.two_sided_p_value(t_value), 1.0 - dist.cdf(t_value))
    } else if t_value > 0.0 {
        (0.0, 0.0)
    } else {
        (0.0, 1.0)
    };
    Ok(TTestResult {
        t_value,
        df,
        p_value_two_sided: p_two,
        p_value_upper: p_upper,
    })
}

/// Welch's t-test from raw samples.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer than
/// two observations.
pub fn welch_t_test(sample1: &[f64], sample2: &[f64]) -> Result<TTestResult> {
    if sample1.len() < 2 || sample2.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            available: sample1.len().min(sample2.len()),
        });
    }
    let m1 = descriptive::mean(sample1).expect("non-empty");
    let m2 = descriptive::mean(sample2).expect("non-empty");
    let v1 = descriptive::sample_variance(sample1).expect("len >= 2");
    let v2 = descriptive::sample_variance(sample2).expect("len >= 2");
    welch_t_test_from_stats(m1, v1, sample1.len(), m2, v2, sample2.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_insufficient_data() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[1.0, 2.0], &[]).is_err());
        assert!(welch_t_test_from_stats(0.0, 1.0, 1, 0.0, 1.0, 5).is_err());
    }

    #[test]
    fn identical_samples_give_zero_statistic() {
        let s = [0.2, 0.4, 0.6, 0.8];
        let r = welch_t_test(&s, &s).unwrap();
        assert!(r.t_value.abs() < 1e-12);
        assert!((r.p_value_two_sided - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_example() {
        // a: mean 3, sample variance 2.5, n = 5
        // b: mean 6, sample variance 10, n = 5
        // t  = (3 − 6) / sqrt(2.5/5 + 10/5) = −3 / sqrt(2.5) = −1.8973666…
        // df = (0.5 + 2)² / (0.5²/4 + 2²/4) = 6.25 / 1.0625 = 5.8823529…
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(
            (r.t_value + 3.0 / 2.5_f64.sqrt()).abs() < 1e-12,
            "t = {}",
            r.t_value
        );
        assert!((r.df - 6.25 / 1.0625).abs() < 1e-12, "df = {}", r.df);
        // Two-sided p-value for |t| = 1.897 at df ≈ 5.88 lies near 0.107.
        assert!(
            r.p_value_two_sided > 0.09 && r.p_value_two_sided < 0.13,
            "p = {}",
            r.p_value_two_sided
        );
        // Upper-tail p-value for a negative statistic is the complement.
        assert!((r.p_value_upper - (1.0 - r.p_value_two_sided / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn clear_mean_shift_detected() {
        let low: Vec<f64> = (0..50).map(|i| 0.1 + 0.001 * (i % 7) as f64).collect();
        let high: Vec<f64> = (0..50).map(|i| 0.6 + 0.001 * (i % 5) as f64).collect();
        let r = welch_t_test(&high, &low).unwrap();
        assert!(r.t_value > 10.0);
        assert!(r.p_value_two_sided < 1e-6);
        assert!(r.p_value_upper < 1e-6);
    }

    #[test]
    fn zero_variance_equal_means() {
        let r = welch_t_test_from_stats(0.5, 0.0, 10, 0.5, 0.0, 10).unwrap();
        assert_eq!(r.t_value, 0.0);
    }

    #[test]
    fn zero_variance_different_means_is_infinite() {
        let r = welch_t_test_from_stats(0.9, 0.0, 10, 0.5, 0.0, 10).unwrap();
        assert!(r.t_value.is_infinite() && r.t_value > 0.0);
        assert_eq!(r.p_value_upper, 0.0);
    }

    #[test]
    fn df_reduces_to_pooled_when_equal() {
        // With equal variances and sizes, Welch df = 2(n-1).
        let df = welch_degrees_of_freedom(1.0, 20.0, 1.0, 20.0);
        assert!((df - 38.0).abs() < 1e-9);
        // Degenerate: both variances zero.
        assert_eq!(welch_degrees_of_freedom(0.0, 10.0, 0.0, 10.0), 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn statistic_antisymmetric(
            a in proptest::collection::vec(0.0f64..1.0, 5..60),
            b in proptest::collection::vec(0.0f64..1.0, 5..60),
        ) {
            let r1 = welch_t_test(&a, &b).unwrap();
            let r2 = welch_t_test(&b, &a).unwrap();
            prop_assert!((r1.t_value + r2.t_value).abs() < 1e-9);
            prop_assert!((r1.p_value_two_sided - r2.p_value_two_sided).abs() < 1e-9);
        }

        #[test]
        fn p_values_in_unit_interval(
            a in proptest::collection::vec(0.0f64..1.0, 3..40),
            b in proptest::collection::vec(0.0f64..1.0, 3..40),
        ) {
            let r = welch_t_test(&a, &b).unwrap();
            prop_assert!((0.0..=1.0).contains(&r.p_value_two_sided));
            prop_assert!((0.0..=1.0).contains(&r.p_value_upper));
            prop_assert!(r.df >= 1.0);
        }
    }
}
