//! Test of equal proportions (STEPD).
//!
//! STEPD (Nishida & Yamauchi, 2007) compares the accuracy of a learner in a
//! recent window against its accuracy over the remaining, older observations
//! using the classical two-proportion z-test with continuity correction.

use crate::dist::Normal;
use crate::{Result, StatsError};

/// Result of the equality-of-proportions test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionsTestResult {
    /// The z statistic (with continuity correction, as in the STEPD paper).
    pub z_value: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Pooled success proportion.
    pub pooled: f64,
}

/// Equality-of-proportions test with continuity correction.
///
/// `successes_old` / `n_old` describe the older segment, `successes_recent` /
/// `n_recent` the recent window.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either segment is empty, or
/// [`StatsError::InvalidParameter`] if a success count exceeds its segment
/// size.
pub fn equal_proportions_test(
    successes_old: f64,
    n_old: f64,
    successes_recent: f64,
    n_recent: f64,
) -> Result<ProportionsTestResult> {
    if n_old < 1.0 || n_recent < 1.0 {
        return Err(StatsError::InsufficientData {
            required: 1,
            available: 0,
        });
    }
    for (name, s, n) in [
        ("successes_old", successes_old, n_old),
        ("successes_recent", successes_recent, n_recent),
    ] {
        if s < 0.0 || s > n {
            return Err(StatsError::InvalidParameter {
                name,
                value: s,
                constraint: "success count must lie in [0, segment size]",
            });
        }
    }

    let pooled = (successes_old + successes_recent) / (n_old + n_recent);
    let p_old = successes_old / n_old;
    let p_recent = successes_recent / n_recent;

    // Continuity-corrected statistic from the STEPD paper:
    //   z = (|p_old - p_recent| - 0.5 (1/n_old + 1/n_recent))
    //       / sqrt(pooled (1 - pooled) (1/n_old + 1/n_recent))
    let inv_sum = 1.0 / n_old + 1.0 / n_recent;
    let denom = (pooled * (1.0 - pooled) * inv_sum).sqrt();
    let num = (p_old - p_recent).abs() - 0.5 * inv_sum;
    let z_value = if denom > 0.0 { num / denom } else { 0.0 };

    // Two-sided p-value; the statistic is non-negative by construction
    // whenever num > 0 (a negative corrected numerator means "no evidence").
    let p_value = if z_value <= 0.0 {
        1.0
    } else {
        2.0 * (1.0 - Normal::std_cdf(z_value))
    };

    Ok(ProportionsTestResult {
        z_value,
        p_value,
        pooled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(equal_proportions_test(1.0, 0.0, 1.0, 10.0).is_err());
        assert!(equal_proportions_test(11.0, 10.0, 1.0, 10.0).is_err());
        assert!(equal_proportions_test(-1.0, 10.0, 1.0, 10.0).is_err());
    }

    #[test]
    fn equal_proportions_large_p_value() {
        let r = equal_proportions_test(80.0, 100.0, 24.0, 30.0).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
        assert!((r.pooled - 104.0 / 130.0).abs() < 1e-12);
    }

    #[test]
    fn strongly_different_proportions_small_p_value() {
        // Old accuracy 95%, recent accuracy 60%.
        let r = equal_proportions_test(950.0, 1000.0, 18.0, 30.0).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.z_value > 4.0);
    }

    #[test]
    fn identical_degenerate_proportions() {
        // All successes everywhere: zero pooled variance => z forced to 0.
        let r = equal_proportions_test(100.0, 100.0, 30.0, 30.0).unwrap();
        assert_eq!(r.z_value, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn p_value_bounded() {
        for &(s1, n1, s2, n2) in &[
            (10.0, 20.0, 5.0, 10.0),
            (3.0, 30.0, 29.0, 30.0),
            (0.0, 50.0, 50.0, 50.0),
        ] {
            let r = equal_proportions_test(s1, n1, s2, n2).unwrap();
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }
}
