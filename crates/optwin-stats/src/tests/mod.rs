//! Hypothesis tests used by OPTWIN, the baseline detectors and the
//! evaluation harness.
//!
//! * [`welch_t_test`] / [`welch_t_test_from_stats`] — unequal-variance
//!   (Welch) t-test, the mean-shift test OPTWIN applies to `W_hist` vs
//!   `W_new` (Algorithm 1, line 14).
//! * [`variance_ratio_test`] / [`variance_ratio_test_from_stats`] — the
//!   F-test on the ratio of sample variances (Algorithm 1, line 11).
//! * [`equal_proportions_test`] — the test of equal proportions used by the
//!   STEPD baseline.
//! * [`wilcoxon_signed_rank`] — the paired, one- or two-tailed Wilcoxon
//!   signed-rank test the paper uses to establish the statistical
//!   significance of OPTWIN's F1 improvements (§4.1).
//! * [`ks_two_sample`] — two-sample Kolmogorov–Smirnov test (KSWIN
//!   extension detector).

mod ks;
mod proportions;
mod variance_ratio;
mod welch;
mod wilcoxon;

pub use ks::{ks_two_sample, ks_two_sample_sorted, KsTestResult};
pub use proportions::{equal_proportions_test, ProportionsTestResult};
pub use variance_ratio::{variance_ratio_test, variance_ratio_test_from_stats, FTestResult};
pub use welch::{welch_degrees_of_freedom, welch_t_test, welch_t_test_from_stats, TTestResult};
pub use wilcoxon::{wilcoxon_signed_rank, Alternative, WilcoxonResult};
