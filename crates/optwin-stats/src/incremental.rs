//! Incremental (streaming) statistics.
//!
//! OPTWIN and several baseline detectors need the mean and variance of a
//! sliding window (or of two adjacent sub-windows) updated in O(1) per
//! element. This module provides:
//!
//! * [`RunningMoments`] — Welford's online algorithm for count/mean/variance
//!   with support for merging two accumulators (used when the optimal-cut
//!   boundary moves elements between `W_hist` and `W_new`).
//! * [`WindowMoments`] — an add/remove accumulator based on shifted sums of
//!   squares. Removal is exact in infinite precision; shifting by the first
//!   observation keeps the floating-point cancellation negligible for the
//!   bounded error-rate streams the detectors observe.
//! * [`Ewma`] — the exponentially weighted moving average estimator used by
//!   the ECDD baseline.

/// Welford online accumulator for count, mean, and variance.
///
/// Adding elements is numerically stable; merging uses the parallel-variance
/// (Chan et al.) formula.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no observations have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n; 0.0 for fewer than one observation).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Unbiased sample variance (divides by n − 1; 0.0 for fewer than two).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Unbiased sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Resets the accumulator to the empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Add/remove accumulator for a bounded sliding window.
///
/// Values are shifted by the first observation seen after a reset so that the
/// sum of squares stays small; this keeps catastrophic cancellation at bay
/// for the `[0, 1]`-bounded error rates (and small real-valued losses) the
/// drift detectors track.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowMoments {
    count: u64,
    shift: f64,
    shift_set: bool,
    sum: f64,
    sum_sq: f64,
}

impl WindowMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        if !self.shift_set {
            self.shift = x;
            self.shift_set = true;
        }
        let d = x - self.shift;
        self.count += 1;
        self.sum += d;
        self.sum_sq += d * d;
    }

    /// Removes an observation previously added. The caller is responsible for
    /// only removing values that are actually in the window (the ring buffer
    /// guarantees this in practice).
    pub fn remove(&mut self, x: f64) {
        debug_assert!(self.count > 0, "removing from an empty WindowMoments");
        if self.count == 0 {
            return;
        }
        let d = x - self.shift;
        self.count -= 1;
        self.sum -= d;
        self.sum_sq -= d * d;
        if self.count == 0 {
            // Fully drained: clear residual rounding noise and forget shift.
            *self = Self::default();
        }
    }

    /// Number of observations currently accounted for.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when the accumulator holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the current contents (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.shift + self.sum / self.count as f64
        }
    }

    /// Population variance of the current contents.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean_d = self.sum / n;
        ((self.sum_sq / n) - mean_d * mean_d).max(0.0)
    }

    /// Unbiased sample variance of the current contents.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.population_variance() * n / (n - 1.0)).max(0.0)
    }

    /// Unbiased sample standard deviation of the current contents.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Sum of the raw (unshifted) observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.shift * self.count as f64 + self.sum
    }

    /// Resets the accumulator to the empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The raw accumulator state `(count, shift, shifted sum, shifted sum of
    /// squares)`, for exact persistence. Restoring through
    /// [`WindowMoments::from_raw`] reproduces the accumulator bit-for-bit,
    /// which a rebuild-by-re-adding cannot guarantee (an accumulator that has
    /// lived through add/remove cycles carries different rounding than a
    /// freshly filled one).
    #[must_use]
    pub fn to_raw(&self) -> (u64, f64, f64, f64) {
        (self.count, self.shift, self.sum, self.sum_sq)
    }

    /// Rebuilds an accumulator from the state captured by
    /// [`WindowMoments::to_raw`].
    #[must_use]
    pub fn from_raw(count: u64, shift: f64, sum: f64, sum_sq: f64) -> Self {
        Self {
            count,
            shift,
            shift_set: count > 0,
            sum,
            sum_sq,
        }
    }

    // Raw-state accessors for the slice kernels in [`crate::kernels`], which
    // hoist the per-element branches out of the hot loops while keeping the
    // sequential update semantics bit-exact.

    pub(crate) fn shift_is_set(&self) -> bool {
        self.shift_set
    }

    pub(crate) fn set_shift(&mut self, shift: f64) {
        self.shift = shift;
        self.shift_set = true;
    }

    pub(crate) fn shift_value(&self) -> f64 {
        self.shift
    }

    pub(crate) fn sums(&self) -> (f64, f64) {
        (self.sum, self.sum_sq)
    }

    pub(crate) fn set_bulk(&mut self, count: u64, sum: f64, sum_sq: f64) {
        self.count = count;
        self.sum = sum;
        self.sum_sq = sum_sq;
    }
}

/// Exponentially weighted moving average with the variance of the EWMA
/// statistic, as used by the ECDD detector (Ross et al., 2012).
///
/// The estimator tracks a Bernoulli (or bounded real) stream `x_t` and
/// maintains:
///
/// * `p̂_t` — the running (unweighted) mean estimate of the stream,
/// * `z_t = (1 − λ) z_{t−1} + λ x_t` — the EWMA statistic,
/// * the exact time-dependent standard deviation of `z_t` under the null
///   hypothesis that the stream mean is constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    lambda: f64,
    count: u64,
    mean: f64,
    z: f64,
    /// Running value of (1-λ)^(2t), used for the exact σ_{Z_t} formula.
    one_minus_lambda_pow_2t: f64,
}

impl Ewma {
    /// Creates a new EWMA estimator with smoothing factor `lambda` in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not in `(0, 1]`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "EWMA lambda must be in (0, 1], got {lambda}"
        );
        Self {
            lambda,
            count: 0,
            mean: 0.0,
            z: 0.0,
            one_minus_lambda_pow_2t: 1.0,
        }
    }

    /// Smoothing factor λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        if self.count == 1 {
            self.z = x;
        } else {
            self.z = (1.0 - self.lambda) * self.z + self.lambda * x;
        }
        let oml = 1.0 - self.lambda;
        self.one_minus_lambda_pow_2t *= oml * oml;
    }

    /// Running mean estimate `p̂_t`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current EWMA statistic `z_t`.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.z
    }

    /// Standard deviation of `z_t` under the null hypothesis that the stream
    /// is i.i.d. Bernoulli with mean `p̂_t`:
    ///
    /// `σ_{Z_t}² = p̂(1−p̂) · λ/(2−λ) · (1 − (1−λ)^{2t})`
    #[must_use]
    pub fn z_std(&self) -> f64 {
        let p = self.mean;
        let var_x = (p * (1.0 - p)).max(0.0);
        let factor = self.lambda / (2.0 - self.lambda) * (1.0 - self.one_minus_lambda_pow_2t);
        (var_x * factor).max(0.0).sqrt()
    }

    /// Standard deviation of the individual observations under the Bernoulli
    /// null (`sqrt(p̂(1−p̂))`).
    #[must_use]
    pub fn x_std(&self) -> f64 {
        (self.mean * (1.0 - self.mean)).max(0.0).sqrt()
    }

    /// Resets the estimator, keeping λ.
    pub fn reset(&mut self) {
        *self = Self::new(self.lambda);
    }

    /// The raw accumulator state `(count, mean, z, (1−λ)^{2t})`, for exact
    /// persistence. Restoring through [`Ewma::from_raw`] reproduces the
    /// estimator bit-for-bit; re-pushing the original observations cannot
    /// guarantee that once the stream is gone.
    #[must_use]
    pub fn to_raw(&self) -> (u64, f64, f64, f64) {
        (self.count, self.mean, self.z, self.one_minus_lambda_pow_2t)
    }

    /// Rebuilds an estimator from the state captured by [`Ewma::to_raw`].
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not in `(0, 1]` (same contract as
    /// [`Ewma::new`]).
    #[must_use]
    pub fn from_raw(lambda: f64, count: u64, mean: f64, z: f64, pow_2t: f64) -> Self {
        let mut e = Self::new(lambda);
        e.count = count;
        e.mean = mean;
        e.z = z;
        e.one_minus_lambda_pow_2t = pow_2t;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn running_moments_matches_batch() {
        let xs = [0.3, 0.7, 0.7, 0.3, 0.3, 0.7, 0.5, 0.5];
        let mut acc = RunningMoments::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), xs.len() as u64);
        assert!((acc.mean() - descriptive::mean(&xs).unwrap()).abs() < 1e-12);
        assert!((acc.sample_variance() - descriptive::sample_variance(&xs).unwrap()).abs() < 1e-12);
        assert!(
            (acc.population_variance() - descriptive::population_variance(&xs).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn running_moments_merge_matches_concatenation() {
        let a = [0.1, 0.2, 0.35, 0.5];
        let b = [0.9, 0.95, 1.0];
        let mut acc_a = RunningMoments::new();
        let mut acc_b = RunningMoments::new();
        for &x in &a {
            acc_a.push(x);
        }
        for &x in &b {
            acc_b.push(x);
        }
        let mut merged = acc_a;
        merged.merge(&acc_b);

        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged.count(), all.len() as u64);
        assert!((merged.mean() - descriptive::mean(&all).unwrap()).abs() < 1e-12);
        assert!(
            (merged.sample_variance() - descriptive::sample_variance(&all).unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn running_moments_merge_with_empty() {
        let mut acc = RunningMoments::new();
        acc.push(1.0);
        acc.push(2.0);
        let empty = RunningMoments::new();
        let mut merged = acc;
        merged.merge(&empty);
        assert_eq!(merged, acc);
        let mut other = RunningMoments::new();
        other.merge(&acc);
        assert_eq!(other, acc);
    }

    #[test]
    fn running_moments_reset() {
        let mut acc = RunningMoments::new();
        acc.push(5.0);
        acc.reset();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
    }

    #[test]
    fn window_moments_add_remove_matches_batch() {
        let xs = [0.05, 0.1, 0.9, 0.85, 0.2, 0.4];
        let mut acc = WindowMoments::new();
        for &x in &xs {
            acc.add(x);
        }
        // Remove the first two; compare against the remaining slice.
        acc.remove(xs[0]);
        acc.remove(xs[1]);
        let rest = &xs[2..];
        assert_eq!(acc.count(), rest.len() as u64);
        assert!((acc.mean() - descriptive::mean(rest).unwrap()).abs() < 1e-10);
        assert!(
            (acc.sample_variance() - descriptive::sample_variance(rest).unwrap()).abs() < 1e-10
        );
        assert!((acc.sum() - rest.iter().sum::<f64>()).abs() < 1e-10);
    }

    #[test]
    fn window_moments_drain_resets_cleanly() {
        let mut acc = WindowMoments::new();
        acc.add(0.25);
        acc.add(0.75);
        acc.remove(0.25);
        acc.remove(0.75);
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        // Re-use after drain works.
        acc.add(1.0);
        assert_eq!(acc.mean(), 1.0);
    }

    #[test]
    fn window_moments_raw_round_trip_is_bit_exact() {
        let mut acc = WindowMoments::new();
        // A history of add/remove cycles leaves rounding residue in the
        // shifted sums; the raw round trip must preserve it exactly.
        for i in 0..50 {
            acc.add(0.1 + 0.013 * f64::from(i));
        }
        for i in 0..20 {
            acc.remove(0.1 + 0.013 * f64::from(i));
        }
        let (count, shift, sum, sum_sq) = acc.to_raw();
        let restored = WindowMoments::from_raw(count, shift, sum, sum_sq);
        assert_eq!(restored, acc);
        assert_eq!(restored.mean().to_bits(), acc.mean().to_bits());
        assert_eq!(
            restored.sample_variance().to_bits(),
            acc.sample_variance().to_bits()
        );

        // Empty accumulator round-trips to the default state.
        let empty = WindowMoments::new();
        let (c, s, su, sq) = empty.to_raw();
        assert_eq!(WindowMoments::from_raw(c, s, su, sq), empty);
    }

    #[test]
    fn window_moments_variance_never_negative() {
        let mut acc = WindowMoments::new();
        // Pathological: identical values should give exactly zero variance.
        for _ in 0..1000 {
            acc.add(0.123_456_789);
        }
        assert!(acc.population_variance() >= 0.0);
        assert!(acc.population_variance() < 1e-18);
    }

    #[test]
    fn ewma_constant_stream_converges_to_value() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.push(1.0);
        }
        assert!((e.value() - 1.0).abs() < 1e-9);
        assert!((e.mean() - 1.0).abs() < 1e-12);
        // Bernoulli variance of a constant stream is 0.
        assert!(e.z_std() < 1e-9);
    }

    #[test]
    fn ewma_std_formula_limits() {
        let mut e = Ewma::new(0.2);
        // Alternating 0/1 stream: p ≈ 0.5.
        for i in 0..10_000 {
            e.push((i % 2) as f64);
        }
        assert!((e.mean() - 0.5).abs() < 1e-3);
        // Asymptotic sigma_Z = sqrt(p(1-p) * λ/(2-λ)) = 0.5*sqrt(0.2/1.8)
        let expected = 0.5 * (0.2_f64 / 1.8).sqrt();
        assert!((e.z_std() - expected).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "EWMA lambda")]
    fn ewma_rejects_bad_lambda() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_reset_keeps_lambda() {
        let mut e = Ewma::new(0.3);
        e.push(1.0);
        e.reset();
        assert_eq!(e.count(), 0);
        assert_eq!(e.lambda(), 0.3);
    }

    #[test]
    fn ewma_raw_round_trip_is_bit_exact() {
        let mut e = Ewma::new(0.2);
        for i in 0..137 {
            e.push(f64::from(i % 3) / 2.0);
        }
        let (count, mean, z, pow) = e.to_raw();
        let restored = Ewma::from_raw(0.2, count, mean, z, pow);
        assert_eq!(restored, e);
        // Further pushes evolve identically.
        let mut a = e;
        let mut b = restored;
        for i in 0..50 {
            a.push(f64::from(i % 2));
            b.push(f64::from(i % 2));
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        assert_eq!(a.z_std().to_bits(), b.z_std().to_bits());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::descriptive;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn welford_matches_batch(xs in proptest::collection::vec(0.0f64..1.0, 1..200)) {
            let mut acc = RunningMoments::new();
            for &x in &xs {
                acc.push(x);
            }
            let batch_mean = descriptive::mean(&xs).unwrap();
            prop_assert!((acc.mean() - batch_mean).abs() < 1e-10);
            if xs.len() >= 2 {
                let batch_var = descriptive::sample_variance(&xs).unwrap();
                prop_assert!((acc.sample_variance() - batch_var).abs() < 1e-10);
            }
        }

        #[test]
        fn window_moments_sliding_matches_batch(
            xs in proptest::collection::vec(0.0f64..1.0, 20..200),
            window in 5usize..15,
        ) {
            let mut acc = WindowMoments::new();
            for (i, &x) in xs.iter().enumerate() {
                acc.add(x);
                if i + 1 > window {
                    acc.remove(xs[i + 1 - window - 1]);
                }
                let start = (i + 1).saturating_sub(window);
                let slice = &xs[start..=i];
                let batch_mean = descriptive::mean(slice).unwrap();
                prop_assert!((acc.mean() - batch_mean).abs() < 1e-8);
                let batch_var = descriptive::population_variance(slice).unwrap();
                prop_assert!((acc.population_variance() - batch_var).abs() < 1e-8);
            }
        }

        #[test]
        fn merge_is_associative_enough(
            a in proptest::collection::vec(0.0f64..1.0, 1..50),
            b in proptest::collection::vec(0.0f64..1.0, 1..50),
            c in proptest::collection::vec(0.0f64..1.0, 1..50),
        ) {
            let accumulate = |xs: &[f64]| {
                let mut acc = RunningMoments::new();
                for &x in xs {
                    acc.push(x);
                }
                acc
            };
            let mut left = accumulate(&a);
            left.merge(&accumulate(&b));
            left.merge(&accumulate(&c));

            let mut right = accumulate(&b);
            right.merge(&accumulate(&c));
            let mut right_total = accumulate(&a);
            right_total.merge(&right);

            prop_assert!((left.mean() - right_total.mean()).abs() < 1e-9);
            prop_assert!((left.sample_variance() - right_total.sample_variance()).abs() < 1e-9);
        }
    }
}
