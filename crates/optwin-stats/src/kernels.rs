//! Chunked, branch-hoisted kernels for the streaming accumulators.
//!
//! The per-element entry points in [`crate::incremental`]
//! ([`RunningMoments::push`], [`WindowMoments::add`], …) each carry a small
//! amount of per-call control flow: the `shift_set` initialisation branch,
//! the drained-to-empty check, the call/return overhead itself. None of it
//! matters for a single element, but the detectors' batch paths fold whole
//! slices through these accumulators, and a loop whose body contains
//! data-dependent branches is opaque to the autovectorizer.
//!
//! The slice kernels in this module hoist every branch out of the loop while
//! preserving the **sequential floating-point operation order** of the
//! element-wise fold exactly. That invariant is what makes them safe to use
//! behind the workspace-wide *batch == scalar bit-exact* contract: floating
//! point addition is not associative, so a kernel that reordered the
//! `sum += d` chain (pairwise reduction, SIMD lanes across the dependency)
//! would produce different bits. These kernels never reorder — they only
//! remove per-element control flow, letting the compiler unroll and schedule
//! the independent parts (`d = x - shift`, `d * d`) across iterations.
//!
//! Every kernel is accompanied by a test proving bit-exactness against the
//! element-wise fold, including over adversarial values (signed zeros,
//! subnormals, huge magnitudes).

use crate::incremental::{RunningMoments, WindowMoments};

impl WindowMoments {
    /// Adds every element of `xs`, bit-identically to calling
    /// [`WindowMoments::add`] once per element in order.
    ///
    /// The shift initialisation (first value after a reset) is hoisted out of
    /// the loop; the remaining loop body is straight-line arithmetic with a
    /// single loop-carried dependency per accumulator.
    pub fn add_slice(&mut self, xs: &[f64]) {
        let Some((&first, rest)) = xs.split_first() else {
            return;
        };
        if !self.shift_is_set() {
            self.set_shift(first);
        }
        let shift = self.shift_value();
        let (mut sum, mut sum_sq) = self.sums();
        // First element handled with the (possibly just-initialised) shift,
        // then the tail runs branch-free.
        let d = first - shift;
        sum += d;
        sum_sq += d * d;
        for &x in rest {
            let d = x - shift;
            sum += d;
            sum_sq += d * d;
        }
        self.set_bulk(self.count() + xs.len() as u64, sum, sum_sq);
    }

    /// Removes every element of `xs`, bit-identically to calling
    /// [`WindowMoments::remove`] once per element in order.
    ///
    /// The count can only reach zero on the final element (each removal
    /// drops it by exactly one), so the scalar path's drained-to-default
    /// check is equivalent to a single check after the loop — which is where
    /// this kernel performs it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `xs` is longer than the current count
    /// (same contract as the scalar [`WindowMoments::remove`]).
    pub fn remove_slice(&mut self, xs: &[f64]) {
        debug_assert!(
            xs.len() as u64 <= self.count(),
            "removing {} elements from a WindowMoments holding {}",
            xs.len(),
            self.count()
        );
        if xs.is_empty() {
            return;
        }
        let shift = self.shift_value();
        let (mut sum, mut sum_sq) = self.sums();
        for &x in xs {
            let d = x - shift;
            sum -= d;
            sum_sq -= d * d;
        }
        let count = self.count().saturating_sub(xs.len() as u64);
        if count == 0 {
            self.reset();
        } else {
            self.set_bulk(count, sum, sum_sq);
        }
    }
}

impl RunningMoments {
    /// Pushes every element of `xs`, bit-identically to calling
    /// [`RunningMoments::push`] once per element in order.
    ///
    /// Welford's recurrence has a true loop-carried dependency through both
    /// `mean` and `m2`, so this cannot vectorize across elements; the kernel
    /// still removes the per-call overhead and keeps the state in registers
    /// across the whole slice.
    pub fn push_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merges every accumulator of `others` into `self`, bit-identically to
    /// calling [`RunningMoments::merge`] once per accumulator in order (a
    /// sequential left fold — **not** a pairwise tree reduction, which would
    /// change the rounding).
    pub fn merge_slice(&mut self, others: &[RunningMoments]) {
        for other in others {
            self.merge(other);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial values: signed zeros, subnormals, huge magnitudes, and a
    /// long constant run — the inputs most likely to expose a reordered
    /// float kernel.
    fn adversarial() -> Vec<f64> {
        let mut xs = vec![
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1e300,
            -1e300,
            1.0,
            -1.0,
            0.1,
            1e-17,
        ];
        xs.extend(std::iter::repeat_n(0.25, 40));
        xs.extend((0..40).map(|i| (i as f64).mul_add(1e8, -13.5)));
        xs
    }

    /// Raw accumulator state with floats as bit patterns, so bit-identical
    /// NaNs (e.g. an `inf - inf` drained sum of squares) compare equal and a
    /// `-0.0` vs `0.0` divergence compares unequal.
    fn raw_bits(raw: (u64, f64, f64, f64)) -> (u64, u64, u64, u64) {
        (raw.0, raw.1.to_bits(), raw.2.to_bits(), raw.3.to_bits())
    }

    #[test]
    fn window_add_slice_is_bit_exact() {
        let xs = adversarial();
        for start in [0, 1, 5] {
            let mut scalar = WindowMoments::new();
            let mut chunked = WindowMoments::new();
            for &x in &xs[..start] {
                scalar.add(x);
                chunked.add(x);
            }
            for &x in &xs[start..] {
                scalar.add(x);
            }
            chunked.add_slice(&xs[start..]);
            assert_eq!(
                raw_bits(scalar.to_raw()),
                raw_bits(chunked.to_raw()),
                "start = {start}"
            );
            assert_eq!(scalar.mean().to_bits(), chunked.mean().to_bits());
            assert_eq!(
                scalar.sample_variance().to_bits(),
                chunked.sample_variance().to_bits()
            );
        }
        // Empty slice is a no-op.
        let mut m = WindowMoments::new();
        m.add(1.0);
        let before = m.to_raw();
        m.add_slice(&[]);
        assert_eq!(m.to_raw(), before);
    }

    #[test]
    fn window_remove_slice_is_bit_exact() {
        let xs = adversarial();
        for removed in [1usize, 7, xs.len() / 2, xs.len()] {
            let mut scalar = WindowMoments::new();
            let mut chunked = WindowMoments::new();
            scalar.add_slice(&xs);
            chunked.add_slice(&xs);
            for &x in &xs[..removed] {
                scalar.remove(x);
            }
            chunked.remove_slice(&xs[..removed]);
            assert_eq!(
                raw_bits(scalar.to_raw()),
                raw_bits(chunked.to_raw()),
                "removed = {removed}"
            );
        }
        // Draining everything resets to the default state.
        let mut m = WindowMoments::new();
        m.add_slice(&xs);
        m.remove_slice(&xs);
        assert_eq!(m, WindowMoments::new());
        let before = m.to_raw();
        m.remove_slice(&[]);
        assert_eq!(m.to_raw(), before);
    }

    #[test]
    fn running_push_slice_is_bit_exact() {
        let xs = adversarial();
        let mut scalar = RunningMoments::new();
        let mut chunked = RunningMoments::new();
        for &x in &xs {
            scalar.push(x);
        }
        for chunk in xs.chunks(9) {
            chunked.push_slice(chunk);
        }
        assert_eq!(scalar, chunked);
        assert_eq!(scalar.mean().to_bits(), chunked.mean().to_bits());
    }

    #[test]
    fn running_merge_slice_is_bit_exact() {
        let xs = adversarial();
        let parts: Vec<RunningMoments> = xs
            .chunks(11)
            .map(|c| {
                let mut m = RunningMoments::new();
                m.push_slice(c);
                m
            })
            .collect();
        let mut scalar = RunningMoments::new();
        for p in &parts {
            scalar.merge(p);
        }
        let mut chunked = RunningMoments::new();
        chunked.merge_slice(&parts);
        assert_eq!(scalar, chunked);
    }
}
