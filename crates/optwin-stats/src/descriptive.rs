//! Batch descriptive statistics over slices.
//!
//! These helpers are used by the hypothesis tests, by the evaluation harness
//! (averaging metrics over repeated runs) and as the ground-truth oracle in
//! property tests for the incremental accumulators.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Unbiased (n − 1) sample variance. Returns `None` if fewer than two values.
#[must_use]
pub fn sample_variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some(ss / (values.len() - 1) as f64)
}

/// Population (n) variance. Returns `None` for an empty slice.
#[must_use]
pub fn population_variance(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some(ss / values.len() as f64)
}

/// Unbiased sample standard deviation.
#[must_use]
pub fn sample_std(values: &[f64]) -> Option<f64> {
    sample_variance(values).map(f64::sqrt)
}

/// Minimum of a slice, ignoring NaNs. Returns `None` for an empty slice.
#[must_use]
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Maximum of a slice, ignoring NaNs. Returns `None` for an empty slice.
#[must_use]
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Median of a slice (interpolated for even lengths). Returns `None` for an
/// empty slice. The input is not required to be sorted.
#[must_use]
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]))
    }
}

/// Quantile of a slice using linear interpolation between closest ranks
/// (the "type 7" definition used by NumPy and R by default).
///
/// `q` must lie in `[0, 1]`; returns `None` for an empty slice or invalid `q`.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Ranks of the values (1-based), with ties receiving the average rank.
///
/// This is the ranking convention needed by the Wilcoxon signed-rank test.
#[must_use]
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((population_variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&xs).unwrap() - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_slices() {
        assert_eq!(mean(&[]), None);
        assert_eq!(sample_variance(&[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(population_variance(&[3.0]), Some(0.0));
        assert_eq!(median(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn min_max_median() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(9.0));
        assert_eq!(median(&xs), Some(3.0));
        let even = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&even), Some(2.5));
    }

    #[test]
    fn min_max_skip_nan() {
        let xs = [f64::NAN, 2.0, 5.0];
        assert_eq!(min(&xs), Some(2.0));
        assert_eq!(max(&xs), Some(5.0));
    }

    #[test]
    fn quantile_type7() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        // Interpolated value.
        assert!((quantile(&xs, 0.1).unwrap() - 1.4).abs() < 1e-12);
        assert_eq!(quantile(&xs, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[42.0], 0.3), Some(42.0));
    }

    #[test]
    fn ranks_with_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(average_ranks(&xs), vec![1.0, 2.5, 2.5, 4.0]);
        let xs = [5.0, 5.0, 5.0];
        assert_eq!(average_ranks(&xs), vec![2.0, 2.0, 2.0]);
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(average_ranks(&xs), vec![3.0, 1.0, 2.0]);
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn ranks_sum_is_invariant() {
        let xs = [0.3, 0.1, 0.1, 0.7, 0.9, 0.9, 0.9];
        let n = xs.len() as f64;
        let total: f64 = average_ranks(&xs).iter().sum();
        assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }
}
