//! Error types for the statistical substrate.

use std::fmt;

/// Errors produced by constructors and evaluations in `optwin-stats`.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution or test parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the constraint that was violated.
        constraint: &'static str,
    },
    /// A probability argument was outside `(0, 1)` (or `[0, 1]` where noted).
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// Not enough data points to perform the requested computation.
    InsufficientData {
        /// Number of observations required.
        required: usize,
        /// Number of observations available.
        available: usize,
    },
    /// An iterative numerical routine failed to converge.
    ConvergenceFailure {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A root-finding bracket did not contain a sign change.
    InvalidBracket {
        /// Lower end of the bracket.
        lo: f64,
        /// Upper end of the bracket.
        hi: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            StatsError::InvalidProbability { value } => {
                write!(f, "invalid probability {value}: must lie in (0, 1)")
            }
            StatsError::InsufficientData {
                required,
                available,
            } => write!(
                f,
                "insufficient data: need at least {required} observations, got {available}"
            ),
            StatsError::ConvergenceFailure {
                routine,
                iterations,
            } => write!(
                f,
                "`{routine}` failed to converge after {iterations} iterations"
            ),
            StatsError::InvalidBracket { lo, hi } => {
                write!(f, "bracket [{lo}, {hi}] does not contain a sign change")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::InvalidParameter {
            name: "df",
            value: -1.0,
            constraint: "must be positive",
        };
        assert!(e.to_string().contains("df"));
        assert!(e.to_string().contains("must be positive"));

        let e = StatsError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));

        let e = StatsError::InsufficientData {
            required: 30,
            available: 2,
        };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains('2'));

        let e = StatsError::ConvergenceFailure {
            routine: "inv_inc_beta",
            iterations: 100,
        };
        assert!(e.to_string().contains("inv_inc_beta"));

        let e = StatsError::InvalidBracket { lo: 0.0, hi: 1.0 };
        assert!(e.to_string().contains("bracket"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&StatsError::InvalidProbability { value: 2.0 });
    }
}
