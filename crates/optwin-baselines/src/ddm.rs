//! DDM — Drift Detection Method (Gama et al., 2004).
//!
//! DDM models the learner's error count as a binomial variable. It tracks the
//! running error rate `p_i` and its standard deviation
//! `s_i = sqrt(p_i (1 − p_i) / i)`, remembers the point where `p + s` was
//! minimal (`p_min + s_min`), and flags
//!
//! * a **warning** when `p_i + s_i ≥ p_min + warning_level · s_min`
//!   (default 2 standard deviations), and
//! * a **drift**   when `p_i + s_i ≥ p_min + drift_level · s_min`
//!   (default 3 standard deviations; the paper's `δ`),
//!
//! after at least `min_instances` (30) observations. On drift the statistics
//! are reset.

use optwin_core::snapshot::{check_version, field, float_field};
use optwin_core::{CoreError, DriftDetector, DriftStatus};

/// Serialization format version of [`Ddm`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Ddm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdmConfig {
    /// Minimum number of observations before drift detection starts.
    pub min_instances: u64,
    /// Number of `s_min` units above `p_min` that triggers a warning.
    pub warning_level: f64,
    /// Number of `s_min` units above `p_min` that triggers a drift.
    pub drift_level: f64,
}

impl Default for DdmConfig {
    fn default() -> Self {
        Self {
            min_instances: 30,
            warning_level: 2.0,
            drift_level: 3.0,
        }
    }
}

/// The DDM drift detector.
#[derive(Debug, Clone)]
pub struct Ddm {
    config: DdmConfig,
    /// Observations since the last reset.
    n: u64,
    /// Error count since the last reset.
    errors: f64,
    p_min: f64,
    s_min: f64,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl Ddm {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `drift_level <= warning_level` or either level is
    /// non-positive.
    #[must_use]
    pub fn new(config: DdmConfig) -> Self {
        assert!(
            config.warning_level > 0.0 && config.drift_level > config.warning_level,
            "DDM levels must satisfy 0 < warning_level < drift_level"
        );
        Self {
            config,
            n: 0,
            errors: 0.0,
            p_min: f64::MAX,
            s_min: f64::MAX,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the MOA defaults (30 / 2σ / 3σ).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(DdmConfig::default())
    }

    /// Current error-rate estimate since the last reset.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.errors / self.n as f64
        }
    }

    /// Minimum recorded `p + s` components (diagnostics).
    #[must_use]
    pub fn minimums(&self) -> (f64, f64) {
        (self.p_min, self.s_min)
    }

    fn restart(&mut self) {
        self.n = 0;
        self.errors = 0.0;
        self.p_min = f64::MAX;
        self.s_min = f64::MAX;
    }
}

impl DriftDetector for Ddm {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        // Any strictly positive value counts as an error (binary input).
        let error = if value > 0.0 { 1.0 } else { 0.0 };
        self.n += 1;
        self.errors += error;

        let n = self.n as f64;
        let p = self.errors / n;
        let s = (p * (1.0 - p) / n).max(0.0).sqrt();

        if self.n < self.config.min_instances {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        if p + s <= self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }

        // Strict inequalities so that a perfect learner (p = s = p_min =
        // s_min = 0) never trips the thresholds.
        let status = if p + s > self.p_min + self.config.drift_level * self.s_min {
            self.drifts_detected += 1;
            self.restart();
            DriftStatus::Drift
        } else if p + s > self.p_min + self.config.warning_level * self.s_min {
            DriftStatus::Warning
        } else {
            DriftStatus::Stable
        };
        self.last_status = status;
        status
    }

    fn reset(&mut self) {
        self.restart();
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "DDM"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        false
    }

    /// Serializes the raw binomial accumulators (`n`, error count) and the
    /// recorded `p_min`/`s_min` minimums verbatim, so the restored detector
    /// evaluates exactly the same thresholds the original would have.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// DDM's state is a handful of scalars — there is no sequence payload to
    /// compress, so both encodings produce the identical value tree.
    fn snapshot_state_encoded(
        &self,
        _encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            ("n".to_string(), serde::Value::UInt(self.n)),
            ("errors".to_string(), serde::Value::Float(self.errors)),
            ("p_min".to_string(), serde::Value::Float(self.p_min)),
            ("s_min".to_string(), serde::Value::Float(self.s_min)),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "DDM")?;
        let n: u64 = field(state, "n")?;
        let finite = |name: &str, x: f64| {
            if x.is_finite() {
                Ok(())
            } else {
                Err(optwin_core::snapshot::invalid(format!(
                    "{name} ({x}) must be finite"
                )))
            }
        };
        let errors = float_field(state, "errors")?;
        finite("errors", errors)?;
        // `errors` counts whole observations, so it must stay within [0, n];
        // anything else makes the error-rate estimate p = errors/n nonsense.
        if !(0.0..=n as f64).contains(&errors) {
            return Err(optwin_core::snapshot::invalid(format!(
                "errors ({errors}) must lie in [0, n = {n}]"
            )));
        }
        // `p_min`/`s_min` start at f64::MAX (which is finite), so the plain
        // finiteness check covers the pristine state too.
        let p_min = float_field(state, "p_min")?;
        finite("p_min", p_min)?;
        let s_min = float_field(state, "s_min")?;
        finite("s_min", s_min)?;
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.n = n;
        self.errors = errors;
        self.p_min = p_min;
        self.s_min = s_min;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::bernoulli;

    #[test]
    #[should_panic(expected = "levels must satisfy")]
    fn rejects_inconsistent_levels() {
        let _ = Ddm::new(DdmConfig {
            min_instances: 30,
            warning_level: 3.0,
            drift_level: 2.0,
        });
    }

    #[test]
    fn no_detection_before_min_instances() {
        let mut d = Ddm::with_defaults();
        for i in 0..29u64 {
            assert_eq!(d.add_element(bernoulli(i, 0.5)), DriftStatus::Stable);
        }
    }

    #[test]
    fn stationary_error_rate_is_stable() {
        let mut d = Ddm::with_defaults();
        let mut drifts = 0;
        for i in 0..20_000u64 {
            if d.add_element(bernoulli(i, 0.15)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        assert!(drifts <= 3, "too many false positives: {drifts}");
        assert!((d.error_rate() - 0.15).abs() < 0.05);
    }

    #[test]
    fn error_rate_increase_detected_with_warning_first() {
        let mut d = Ddm::with_defaults();
        let mut first_warning = None;
        let mut first_drift = None;
        for i in 0..6_000u64 {
            let p = if i < 3_000 { 0.05 } else { 0.45 };
            match d.add_element(bernoulli(i, p)) {
                DriftStatus::Warning if first_warning.is_none() => first_warning = Some(i),
                // DDM has a well-known cold-start quirk: right after
                // `min_instances` the recorded minimum is based on very few
                // samples, so an unlucky error cluster can fire spuriously.
                // Ignore that start-up region and judge the steady state.
                DriftStatus::Drift if i >= 500 => {
                    first_drift = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let drift = first_drift.expect("DDM must detect the shift");
        assert!(drift >= 3_000, "false positive at {drift}");
        assert!(drift < 3_300, "delay too large: {}", drift - 3_000);
        if let Some(w) = first_warning {
            assert!(w <= drift);
        }
    }

    #[test]
    fn improvement_is_not_flagged() {
        let mut d = Ddm::with_defaults();
        for i in 0..6_000u64 {
            let p = if i < 3_000 { 0.45 } else { 0.05 };
            assert_ne!(d.add_element(bernoulli(i, p)), DriftStatus::Drift);
        }
    }

    #[test]
    fn resets_after_drift_and_detects_again() {
        let mut d = Ddm::with_defaults();
        let mut detections = Vec::new();
        for i in 0..12_000u64 {
            let p = match i {
                0..=3_999 => 0.05,
                4_000..=7_999 => 0.35,
                _ => 0.70,
            };
            if d.add_element(bernoulli(i, p)) == DriftStatus::Drift {
                detections.push(i);
            }
        }
        assert!(detections.len() >= 2, "detections: {detections:?}");
        assert!(detections.iter().any(|&i| (4_000..4_600).contains(&i)));
        // After the first reset DDM accumulates ~4 000 stable observations,
        // so the cumulative error rate reacts more slowly to the second
        // shift; allow a correspondingly longer delay.
        assert!(detections.iter().any(|&i| (8_000..9_200).contains(&i)));
        assert_eq!(d.drifts_detected() as usize, detections.len());
    }

    #[test]
    fn binary_only_metadata() {
        let d = Ddm::with_defaults();
        assert!(!d.supports_real_valued_input());
        assert_eq!(d.name(), "DDM");
        let (p_min, s_min) = d.minimums();
        assert_eq!(p_min, f64::MAX);
        assert_eq!(s_min, f64::MAX);
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..9_000u64)
            .map(|i| {
                let p = match i {
                    0..=3_999 => 0.05,
                    4_000..=6_999 => 0.35,
                    _ => 0.70,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Ddm::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..9_000u64)
            .map(|i| {
                let p = match i {
                    0..=3_999 => 0.05,
                    4_000..=6_999 => 0.35,
                    _ => 0.70,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_snapshot_equivalence(
            Ddm::with_defaults,
            &stream,
            &[0, 17, 2_000, 4_300, 9_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Ddm::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());
        let err = d
            .restore_state(&serde::Value::Object(vec![(
                "version".to_string(),
                serde::Value::UInt(99),
            )]))
            .unwrap_err();
        assert!(err.to_string().contains("version"));

        // Non-finite accumulators are rejected and nothing is assigned.
        let mut donor = Ddm::with_defaults();
        for i in 0..100u64 {
            donor.add_element(bernoulli(i, 0.2));
        }
        let serde::Value::Object(mut fields) = donor.snapshot_state().unwrap() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "errors" {
                *v = serde::Value::Float(f64::INFINITY);
            }
        }
        let before = d.elements_seen();
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        assert_eq!(d.elements_seen(), before);

        // An error count outside [0, n] is rejected: p = errors/n would be
        // negative or above one.
        let serde::Value::Object(mut fields) = donor.snapshot_state().unwrap() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "errors" {
                *v = serde::Value::Float(-5.0);
            }
        }
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("errors"), "{err}");
    }

    #[test]
    fn manual_reset() {
        let mut d = Ddm::with_defaults();
        for i in 0..100u64 {
            d.add_element(bernoulli(i, 0.3));
        }
        d.reset();
        assert_eq!(d.error_rate(), 0.0);
        assert_eq!(d.elements_seen(), 100);
    }
}
