//! KSWIN — Kolmogorov–Smirnov WINdowing (extension detector).
//!
//! KSWIN keeps a window of the most recent `window_size` observations and
//! tests, with the two-sample Kolmogorov–Smirnov statistic, whether the most
//! recent `stat_size` observations come from the same distribution as the
//! older part of the window. Because the KS test is distribution-free it
//! reacts to any change of the error distribution, not just mean shifts.
//!
//! This implementation compares the recent slice against the *entire* older
//! portion of the window (instead of a random sub-sample as in some reference
//! implementations), which keeps the detector fully deterministic.
//!
//! The two KS samples are maintained as **incrementally sorted** arrays: each
//! step moves at most three elements (the evicted oldest value, the value
//! graduating from the recent slice into the older one, and the new arrival)
//! by binary-searched insert/remove, so the per-element cost is a single
//! linear KS merge-scan instead of two `O(n log n)` sorts. The KS statistic
//! depends only on order statistics — any permutation of tied values yields
//! the same result — so this is decision-identical to re-sorting from scratch.

use std::collections::VecDeque;

use optwin_core::snapshot::{check_version, field, invalid};
use optwin_core::{BatchOutcome, CoreError, DriftDetector, DriftStatus};
use optwin_stats::tests::ks_two_sample_sorted;

/// Inserts `value` into ascending-sorted `xs`, keeping it sorted.
fn insert_sorted(xs: &mut Vec<f64>, value: f64) {
    let pos = xs.partition_point(|&x| x < value);
    xs.insert(pos, value);
}

/// Removes one element comparing equal to `value` from ascending-sorted `xs`.
/// Returns `false` when no such element exists (only possible when the
/// mirrors have desynced, e.g. via NaN input); the caller then falls back to
/// a full rebuild.
fn remove_sorted(xs: &mut Vec<f64>, value: f64) -> bool {
    let pos = xs.partition_point(|&x| x < value);
    if pos < xs.len() && xs[pos] == value {
        xs.remove(pos);
        true
    } else {
        false
    }
}

/// Serialization format version of [`Kswin`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Kswin`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KswinConfig {
    /// Total sliding-window size (default 300).
    pub window_size: usize,
    /// Size of the recent slice compared against the rest (default 30).
    pub stat_size: usize,
    /// Significance level α for the KS test (default `1e-4`).
    ///
    /// The test runs after every ingested element, so α must be chosen with
    /// the implied multiple-testing in mind; `1e-4` keeps the false-positive
    /// rate low while still reacting to genuine shifts within a few dozen
    /// elements.
    pub alpha: f64,
}

impl Default for KswinConfig {
    fn default() -> Self {
        Self {
            window_size: 300,
            stat_size: 30,
            alpha: 1e-4,
        }
    }
}

/// The KSWIN drift detector.
#[derive(Debug, Clone)]
pub struct Kswin {
    config: KswinConfig,
    window: VecDeque<f64>,
    /// Ascending-sorted mirror of the older window portion (first
    /// `window_size − stat_size` elements), maintained incrementally while
    /// the window is full.
    older_sorted: Vec<f64>,
    /// Ascending-sorted mirror of the recent slice (last `stat_size`
    /// elements).
    recent_sorted: Vec<f64>,
    /// Whether the sorted mirrors reflect the current window contents. False
    /// after construction, reset, restore and drift truncation; the next
    /// full-window step rebuilds them.
    sorted_valid: bool,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl Kswin {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `stat_size` is zero, `window_size <= 2 * stat_size`, or
    /// `alpha` is outside `(0, 1)`.
    #[must_use]
    pub fn new(config: KswinConfig) -> Self {
        assert!(config.stat_size > 0, "KSWIN stat_size must be positive");
        assert!(
            config.window_size > 2 * config.stat_size,
            "KSWIN window_size must exceed twice the stat_size"
        );
        assert!(
            config.alpha > 0.0 && config.alpha < 1.0,
            "KSWIN alpha must lie in (0, 1)"
        );
        Self {
            window: VecDeque::with_capacity(config.window_size),
            older_sorted: Vec::with_capacity(config.window_size - config.stat_size),
            recent_sorted: Vec::with_capacity(config.stat_size),
            sorted_valid: false,
            config,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the defaults (window 300, slice 30,
    /// α = 1e-4).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(KswinConfig::default())
    }

    /// Number of elements currently buffered.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Rebuilds both sorted mirrors from the (full) window.
    fn rebuild_sorted(&mut self) {
        let split = self.window.len() - self.config.stat_size;
        self.older_sorted.clear();
        self.recent_sorted.clear();
        self.older_sorted
            .extend(self.window.iter().copied().take(split));
        self.recent_sorted
            .extend(self.window.iter().copied().skip(split));
        let by_value = |x: &f64, y: &f64| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal);
        self.older_sorted.sort_by(by_value);
        self.recent_sorted.sort_by(by_value);
        self.sorted_valid = true;
    }

    /// One ingestion step. While the window is full the sorted KS samples are
    /// updated by moving exactly three elements (evicted, graduating, new)
    /// instead of re-sorting both slices.
    fn step(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        let split = self.config.window_size - self.config.stat_size;
        if self.window.len() == self.config.window_size {
            // The oldest recent element graduates into the older sample once
            // the new value arrives; capture it before the shift.
            let graduate = self.window[split];
            let evicted = self.window.pop_front().expect("window is full");
            if self.sorted_valid {
                if remove_sorted(&mut self.older_sorted, evicted)
                    && remove_sorted(&mut self.recent_sorted, graduate)
                {
                    insert_sorted(&mut self.older_sorted, graduate);
                    insert_sorted(&mut self.recent_sorted, value);
                } else {
                    self.sorted_valid = false;
                }
            }
        }
        self.window.push_back(value);

        if self.window.len() < self.config.window_size {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        if !self.sorted_valid {
            self.rebuild_sorted();
        }

        let status = match ks_two_sample_sorted(&self.recent_sorted, &self.older_sorted) {
            Ok(r) if r.p_value < self.config.alpha => {
                self.drifts_detected += 1;
                // Keep only the recent slice: it represents the new concept.
                self.window.drain(..split);
                self.sorted_valid = false;
                DriftStatus::Drift
            }
            Ok(r) if r.p_value < self.config.alpha * 10.0 => DriftStatus::Warning,
            _ => DriftStatus::Stable,
        };
        self.last_status = status;
        status
    }
}

impl DriftDetector for Kswin {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.step(value)
    }

    /// Native batch path: the per-element KS test is unavoidable (every
    /// element can change the verdict), but the sorted-sample maintenance and
    /// the sample buffers live on the detector, so the loop allocates
    /// nothing.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let mut outcome = BatchOutcome::with_len(values.len());
        for (i, &value) in values.iter().enumerate() {
            outcome.record(i, self.step(value));
        }
        outcome
    }

    fn reset(&mut self) {
        self.window.clear();
        self.sorted_valid = false;
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "KSWIN"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    /// Struct size plus the window ring and both sorted mirrors, counted at
    /// capacity (all three are pre-allocated to their full size).
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self)
            + (self.window.capacity()
                + self.older_sorted.capacity()
                + self.recent_sorted.capacity())
                * std::mem::size_of::<f64>()
    }

    /// Serializes the buffered window contents verbatim plus the lifetime
    /// counters — KSWIN's entire mutable state is the raw window.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// [`Kswin::snapshot_state`] with an explicit window layout: the raw
    /// window (the bulk of KSWIN's state at large `window_size`) serializes
    /// as a JSON array or a compact binary blob.
    fn snapshot_state_encoded(
        &self,
        encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        let window: Vec<f64> = self.window.iter().copied().collect();
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            (
                "window".to_string(),
                optwin_core::snapshot::f64_seq_value(encoding, &window),
            ),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "KSWIN")?;
        let window: Vec<f64> = optwin_core::snapshot::f64_seq_field(state, "window")?;
        if window.len() > self.config.window_size {
            return Err(invalid(format!(
                "window has {} entries, configuration allows {}",
                window.len(),
                self.config.window_size
            )));
        }
        // Window elements are raw user input and restore verbatim —
        // `add_element` never rejected them, so restore cannot either.
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.window = window.into_iter().collect();
        self.sorted_valid = false;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::jitter;

    #[test]
    #[should_panic(expected = "window_size must exceed")]
    fn rejects_window_smaller_than_slices() {
        let _ = Kswin::new(KswinConfig {
            window_size: 50,
            stat_size: 30,
            alpha: 0.005,
        });
    }

    #[test]
    fn no_detection_until_window_full() {
        let mut d = Kswin::with_defaults();
        for i in 0..299u64 {
            assert_eq!(d.add_element(0.3 + 0.1 * jitter(i)), DriftStatus::Stable);
        }
        assert_eq!(d.window_len(), 299);
    }

    #[test]
    fn stationary_stream_is_mostly_stable() {
        let mut d = Kswin::with_defaults();
        let mut drifts = 0;
        for i in 0..20_000u64 {
            if d.add_element(0.3 + 0.2 * jitter(i)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        assert!(drifts <= 4, "drifts = {drifts}");
    }

    #[test]
    fn distribution_shift_detected() {
        let mut d = Kswin::with_defaults();
        let mut detected_at = None;
        for i in 0..6_000u64 {
            let x = if i < 3_000 {
                0.2 + 0.1 * jitter(i)
            } else {
                0.7 + 0.1 * jitter(i)
            };
            if d.add_element(x) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("KSWIN must detect a distribution shift");
        assert!(at >= 3_000, "false positive at {at}");
        assert!(at < 3_100, "delay = {}", at - 3_000);
    }

    #[test]
    fn variance_change_detected() {
        // KS reacts to shape changes, not only mean shifts.
        let mut d = Kswin::with_defaults();
        let mut detected = false;
        for i in 0..6_000u64 {
            let x = if i < 3_000 {
                0.5 + 0.02 * jitter(i)
            } else {
                0.5 + 0.9 * jitter(i)
            };
            if d.add_element(x) == DriftStatus::Drift {
                detected = true;
                assert!(i >= 3_000, "false positive at {i}");
                break;
            }
        }
        assert!(detected);
    }

    #[test]
    fn window_shrinks_after_detection() {
        let mut d = Kswin::with_defaults();
        for i in 0..3_200u64 {
            let x = if i < 3_000 { 0.1 } else { 0.9 } + 0.05 * jitter(i);
            d.add_element(x);
            if d.drifts_detected() > 0 {
                break;
            }
        }
        assert!(d.drifts_detected() > 0);
        assert_eq!(d.window_len(), 30);
    }

    #[test]
    fn reset_and_metadata() {
        let mut d = Kswin::with_defaults();
        for i in 0..500u64 {
            d.add_element(0.5 + 0.1 * jitter(i));
        }
        d.reset();
        assert_eq!(d.window_len(), 0);
        assert_eq!(d.name(), "KSWIN");
        assert!(d.supports_real_valued_input());
    }

    #[test]
    fn incremental_sort_matches_naive_resort() {
        use optwin_stats::tests::ks_two_sample;
        // Drive the detector alongside a naive reference that re-copies and
        // re-sorts both samples every step (the pre-optimization behaviour);
        // every per-element decision must match. The tail of the stream is
        // quantized to a small grid to force heavy tie traffic (including
        // exact 0.0 / 1.0) through the binary insert/remove paths.
        let cfg = KswinConfig::default();
        let mut d = Kswin::new(cfg);
        let mut window: VecDeque<f64> = VecDeque::new();
        for i in 0..6_000u64 {
            let x = if i < 2_000 {
                0.2 + 0.1 * jitter(i)
            } else if i < 4_000 {
                (0.65 + 0.1 * jitter(i)).clamp(0.0, 1.0)
            } else {
                ((i * 37) % 11) as f64 / 10.0
            };
            if window.len() == cfg.window_size {
                window.pop_front();
            }
            window.push_back(x);
            let expected = if window.len() < cfg.window_size {
                DriftStatus::Stable
            } else {
                let split = window.len() - cfg.stat_size;
                let older: Vec<f64> = window.iter().copied().take(split).collect();
                let recent: Vec<f64> = window.iter().copied().skip(split).collect();
                match ks_two_sample(&recent, &older) {
                    Ok(r) if r.p_value < cfg.alpha => {
                        window.drain(..split);
                        DriftStatus::Drift
                    }
                    Ok(r) if r.p_value < cfg.alpha * 10.0 => DriftStatus::Warning,
                    _ => DriftStatus::Stable,
                }
            };
            assert_eq!(d.add_element(x), expected, "element {i}");
        }
        assert!(d.drifts_detected() > 0, "stream must exercise drift resets");
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..4_000u64)
            .map(|i| {
                let base = if i < 2_000 { 0.2 } else { 0.65 };
                (base + 0.1 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Kswin::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..4_000u64)
            .map(|i| {
                let base = if i < 2_000 { 0.2 } else { 0.65 };
                (base + 0.1 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        // Cuts before the window fills, mid-stream, and right after the
        // drift region (where the window was truncated to the recent slice).
        crate::test_util::assert_snapshot_equivalence(
            Kswin::with_defaults,
            &stream,
            &[0, 150, 1_000, 2_100, 4_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Kswin::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Kswin::with_defaults();
        for i in 0..500u64 {
            donor.add_element(0.5 + 0.1 * jitter(i));
        }
        let state = donor.snapshot_state().unwrap();
        // A restoring configuration with a smaller window rejects the
        // oversized buffer.
        let mut small = Kswin::new(KswinConfig {
            window_size: 80,
            stat_size: 20,
            alpha: 1e-4,
        });
        let err = small.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("window has"), "{err}");
    }
}
