//! KSWIN — Kolmogorov–Smirnov WINdowing (extension detector).
//!
//! KSWIN keeps a window of the most recent `window_size` observations and
//! tests, with the two-sample Kolmogorov–Smirnov statistic, whether the most
//! recent `stat_size` observations come from the same distribution as the
//! older part of the window. Because the KS test is distribution-free it
//! reacts to any change of the error distribution, not just mean shifts.
//!
//! This implementation compares the recent slice against the *entire* older
//! portion of the window (instead of a random sub-sample as in some reference
//! implementations), which keeps the detector fully deterministic.

use std::collections::VecDeque;

use optwin_core::snapshot::{check_version, field, invalid};
use optwin_core::{BatchOutcome, CoreError, DriftDetector, DriftStatus};
use optwin_stats::tests::ks_two_sample;

/// Serialization format version of [`Kswin`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Kswin`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KswinConfig {
    /// Total sliding-window size (default 300).
    pub window_size: usize,
    /// Size of the recent slice compared against the rest (default 30).
    pub stat_size: usize,
    /// Significance level α for the KS test (default `1e-4`).
    ///
    /// The test runs after every ingested element, so α must be chosen with
    /// the implied multiple-testing in mind; `1e-4` keeps the false-positive
    /// rate low while still reacting to genuine shifts within a few dozen
    /// elements.
    pub alpha: f64,
}

impl Default for KswinConfig {
    fn default() -> Self {
        Self {
            window_size: 300,
            stat_size: 30,
            alpha: 1e-4,
        }
    }
}

/// The KSWIN drift detector.
#[derive(Debug, Clone)]
pub struct Kswin {
    config: KswinConfig,
    window: VecDeque<f64>,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl Kswin {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `stat_size` is zero, `window_size <= 2 * stat_size`, or
    /// `alpha` is outside `(0, 1)`.
    #[must_use]
    pub fn new(config: KswinConfig) -> Self {
        assert!(config.stat_size > 0, "KSWIN stat_size must be positive");
        assert!(
            config.window_size > 2 * config.stat_size,
            "KSWIN window_size must exceed twice the stat_size"
        );
        assert!(
            config.alpha > 0.0 && config.alpha < 1.0,
            "KSWIN alpha must lie in (0, 1)"
        );
        Self {
            window: VecDeque::with_capacity(config.window_size),
            config,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the defaults (window 300, slice 30,
    /// α = 1e-4).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(KswinConfig::default())
    }

    /// Number of elements currently buffered.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// One ingestion step. `older` and `recent` are caller-provided scratch
    /// buffers for the two KS samples, so the batch path can reuse one pair
    /// of allocations across the whole slice.
    fn step(&mut self, value: f64, older: &mut Vec<f64>, recent: &mut Vec<f64>) -> DriftStatus {
        self.elements_seen += 1;
        if self.window.len() == self.config.window_size {
            self.window.pop_front();
        }
        self.window.push_back(value);

        if self.window.len() < self.config.window_size {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        let split = self.window.len() - self.config.stat_size;
        older.clear();
        recent.clear();
        older.extend(self.window.iter().copied().take(split));
        recent.extend(self.window.iter().copied().skip(split));

        let status = match ks_two_sample(recent, older) {
            Ok(r) if r.p_value < self.config.alpha => {
                self.drifts_detected += 1;
                // Keep only the recent slice: it represents the new concept.
                self.window.clear();
                self.window.extend(recent.iter().copied());
                DriftStatus::Drift
            }
            Ok(r) if r.p_value < self.config.alpha * 10.0 => DriftStatus::Warning,
            _ => DriftStatus::Stable,
        };
        self.last_status = status;
        status
    }
}

impl DriftDetector for Kswin {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        let mut older = Vec::new();
        let mut recent = Vec::new();
        self.step(value, &mut older, &mut recent)
    }

    /// Native batch path: the per-element KS test is unavoidable (every
    /// element can change the verdict), but the two sample buffers are
    /// allocated once per batch instead of twice per element.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let mut outcome = BatchOutcome::with_len(values.len());
        let mut older = Vec::with_capacity(self.config.window_size);
        let mut recent = Vec::with_capacity(self.config.stat_size);
        for (i, &value) in values.iter().enumerate() {
            outcome.record(i, self.step(value, &mut older, &mut recent));
        }
        outcome
    }

    fn reset(&mut self) {
        self.window.clear();
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "KSWIN"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    /// Serializes the buffered window contents verbatim plus the lifetime
    /// counters — KSWIN's entire mutable state is the raw window.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// [`Kswin::snapshot_state`] with an explicit window layout: the raw
    /// window (the bulk of KSWIN's state at large `window_size`) serializes
    /// as a JSON array or a compact binary blob.
    fn snapshot_state_encoded(
        &self,
        encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        let window: Vec<f64> = self.window.iter().copied().collect();
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            (
                "window".to_string(),
                optwin_core::snapshot::f64_seq_value(encoding, &window),
            ),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "KSWIN")?;
        let window: Vec<f64> = optwin_core::snapshot::f64_seq_field(state, "window")?;
        if window.len() > self.config.window_size {
            return Err(invalid(format!(
                "window has {} entries, configuration allows {}",
                window.len(),
                self.config.window_size
            )));
        }
        if window.iter().any(|v| !v.is_finite()) {
            return Err(invalid("window contains non-finite values"));
        }
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.window = window.into_iter().collect();
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::jitter;

    #[test]
    #[should_panic(expected = "window_size must exceed")]
    fn rejects_window_smaller_than_slices() {
        let _ = Kswin::new(KswinConfig {
            window_size: 50,
            stat_size: 30,
            alpha: 0.005,
        });
    }

    #[test]
    fn no_detection_until_window_full() {
        let mut d = Kswin::with_defaults();
        for i in 0..299u64 {
            assert_eq!(d.add_element(0.3 + 0.1 * jitter(i)), DriftStatus::Stable);
        }
        assert_eq!(d.window_len(), 299);
    }

    #[test]
    fn stationary_stream_is_mostly_stable() {
        let mut d = Kswin::with_defaults();
        let mut drifts = 0;
        for i in 0..20_000u64 {
            if d.add_element(0.3 + 0.2 * jitter(i)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        assert!(drifts <= 4, "drifts = {drifts}");
    }

    #[test]
    fn distribution_shift_detected() {
        let mut d = Kswin::with_defaults();
        let mut detected_at = None;
        for i in 0..6_000u64 {
            let x = if i < 3_000 {
                0.2 + 0.1 * jitter(i)
            } else {
                0.7 + 0.1 * jitter(i)
            };
            if d.add_element(x) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("KSWIN must detect a distribution shift");
        assert!(at >= 3_000, "false positive at {at}");
        assert!(at < 3_100, "delay = {}", at - 3_000);
    }

    #[test]
    fn variance_change_detected() {
        // KS reacts to shape changes, not only mean shifts.
        let mut d = Kswin::with_defaults();
        let mut detected = false;
        for i in 0..6_000u64 {
            let x = if i < 3_000 {
                0.5 + 0.02 * jitter(i)
            } else {
                0.5 + 0.9 * jitter(i)
            };
            if d.add_element(x) == DriftStatus::Drift {
                detected = true;
                assert!(i >= 3_000, "false positive at {i}");
                break;
            }
        }
        assert!(detected);
    }

    #[test]
    fn window_shrinks_after_detection() {
        let mut d = Kswin::with_defaults();
        for i in 0..3_200u64 {
            let x = if i < 3_000 { 0.1 } else { 0.9 } + 0.05 * jitter(i);
            d.add_element(x);
            if d.drifts_detected() > 0 {
                break;
            }
        }
        assert!(d.drifts_detected() > 0);
        assert_eq!(d.window_len(), 30);
    }

    #[test]
    fn reset_and_metadata() {
        let mut d = Kswin::with_defaults();
        for i in 0..500u64 {
            d.add_element(0.5 + 0.1 * jitter(i));
        }
        d.reset();
        assert_eq!(d.window_len(), 0);
        assert_eq!(d.name(), "KSWIN");
        assert!(d.supports_real_valued_input());
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..4_000u64)
            .map(|i| {
                let base = if i < 2_000 { 0.2 } else { 0.65 };
                (base + 0.1 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Kswin::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..4_000u64)
            .map(|i| {
                let base = if i < 2_000 { 0.2 } else { 0.65 };
                (base + 0.1 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        // Cuts before the window fills, mid-stream, and right after the
        // drift region (where the window was truncated to the recent slice).
        crate::test_util::assert_snapshot_equivalence(
            Kswin::with_defaults,
            &stream,
            &[0, 150, 1_000, 2_100, 4_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Kswin::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Kswin::with_defaults();
        for i in 0..500u64 {
            donor.add_element(0.5 + 0.1 * jitter(i));
        }
        let state = donor.snapshot_state().unwrap();
        // A restoring configuration with a smaller window rejects the
        // oversized buffer.
        let mut small = Kswin::new(KswinConfig {
            window_size: 80,
            stat_size: 20,
            alpha: 1e-4,
        });
        let err = small.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("window has"), "{err}");
    }
}
