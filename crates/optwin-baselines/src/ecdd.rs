//! ECDD — EWMA charts for Concept Drift Detection (Ross et al., 2012).
//!
//! ECDD feeds the binary error stream into an exponentially weighted moving
//! average `Z_t = (1 − λ) Z_{t−1} + λ X_t` and flags a drift when `Z_t`
//! exceeds a control limit calibrated so that the *average run length*
//! between false positives on a stationary stream is approximately a target
//! `ARL₀`.
//!
//! The original paper calibrates the control limit with Monte-Carlo
//! simulations and publishes fitted polynomials in the estimated error rate
//! `p̂_t`. Those polynomial coefficients are not reproduced here; instead the
//! control limit is derived analytically from a **Chernoff bound** on the
//! exceedance probability of the EWMA of Bernoulli variables:
//!
//! ```text
//! P(Z_t > c)  ≤  exp( −sup_s [ s·c − Σ_k ln(1 − p + p·e^{s·w_k}) ] ),
//!     w_k = λ (1 − λ)^k   (k over the observations since the last reset)
//! ```
//!
//! and `c` is chosen so that this bound equals `1/ARL₀`. The bound respects
//! the strong right-skew of the EWMA at small error rates (where a normal
//! approximation badly underestimates the tail), while remaining slightly
//! conservative; qualitatively the detector keeps the behaviour the OPTWIN
//! paper measured for ECDD — very fast reactions and the highest
//! false-positive count of the line-up.

use std::sync::{Arc, OnceLock, RwLock};

use optwin_core::snapshot::{check_version, field, float_field, invalid};
use optwin_core::{CoreError, DriftDetector, DriftStatus};
use optwin_stats::incremental::Ewma;

/// Serialization format version of [`Ecdd`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Ecdd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcddConfig {
    /// EWMA smoothing factor λ (the paper recommends 0.2).
    pub lambda: f64,
    /// Target average run length between false positives (paper default 400).
    pub arl0: f64,
    /// Minimum number of observations before detection starts.
    pub min_instances: u64,
    /// Fraction of the distance between `p̂` and the drift threshold at which
    /// a warning is reported (0.5 in the reference implementations).
    pub warning_fraction: f64,
}

impl Default for EcddConfig {
    fn default() -> Self {
        Self {
            lambda: 0.2,
            arl0: 400.0,
            min_instances: 30,
            warning_fraction: 0.5,
        }
    }
}

/// The ECDD drift detector.
#[derive(Debug, Clone)]
pub struct Ecdd {
    config: EcddConfig,
    ewma: Ewma,
    /// Cache of control limits keyed by the rounded error-rate estimate
    /// (index = round(p̂ / P_RESOLUTION)), shared process-wide between every
    /// detector with the same `(λ, ARL₀)` calibration, so the Chernoff
    /// calibration runs at most once per distinct rounded rate per process —
    /// not once per detector instance.
    limit_cache: SharedLimitCache,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

/// Resolution at which the error-rate estimate is rounded for the control
/// limit cache.
const P_RESOLUTION: f64 = 0.005;

/// Number of slots in a control-limit cache (one per rounded rate in
/// `[0, 1]`, plus headroom for the clamp).
const LIMIT_CACHE_LEN: usize = (1.0 / P_RESOLUTION) as usize + 2;

/// A control-limit cache shared between detector instances.
type SharedLimitCache = Arc<RwLock<Vec<Option<f64>>>>;

/// Registry of interned caches, keyed by the `(λ, ARL₀)` bit patterns.
type LimitRegistry = RwLock<Vec<((u64, u64), SharedLimitCache)>>;

/// Maximum number of distinct `(λ, ARL₀)` calibrations the registry holds.
/// Real fleets use a handful; the cap only matters for adversarial callers
/// cycling many calibrations, where unbounded interning would otherwise
/// grow the registry (and pin every cache) for the life of the process.
const MAX_SHARED_LIMIT_CACHES: usize = 64;

/// Process-wide interning of control-limit caches by `(λ, ARL₀)`. The limit
/// is a pure, deterministic function of those two parameters and the rounded
/// rate, so sharing the cache changes no decision — it only deduplicates the
/// expensive Chernoff calibration (a golden-section search inside a binary
/// search, ~10⁵ transcendental evaluations per miss) across fleets of
/// detectors, clones and resets.
///
/// The registry is bounded at [`MAX_SHARED_LIMIT_CACHES`] entries: when a
/// new calibration would exceed the cap, the oldest-interned entry is
/// evicted. Detectors already holding the evicted cache keep their `Arc`
/// and stay fully correct (the limit is deterministic); only *future*
/// constructions with that calibration recompute limits into a fresh cache.
fn shared_limit_cache(lambda: f64, arl0: f64) -> SharedLimitCache {
    let registry = limit_registry();
    let key = (lambda.to_bits(), arl0.to_bits());
    if let Some((_, cache)) = registry
        .read()
        .expect("ECDD limit registry poisoned")
        .iter()
        .find(|(k, _)| *k == key)
    {
        return Arc::clone(cache);
    }
    let mut entries = registry.write().expect("ECDD limit registry poisoned");
    // Re-check under the write lock: another thread may have interned the
    // key between the two acquisitions.
    if let Some((_, cache)) = entries.iter().find(|(k, _)| *k == key) {
        return Arc::clone(cache);
    }
    if entries.len() >= MAX_SHARED_LIMIT_CACHES {
        // FIFO eviction: entry 0 is the oldest interning.
        entries.remove(0);
    }
    let cache: SharedLimitCache = Arc::new(RwLock::new(vec![None; LIMIT_CACHE_LEN]));
    entries.push((key, Arc::clone(&cache)));
    cache
}

/// The process-wide registry backing [`shared_limit_cache`].
fn limit_registry() -> &'static LimitRegistry {
    static REGISTRY: OnceLock<LimitRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

impl Ecdd {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`, `arl0` is not at least 2, or
    /// `warning_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(config: EcddConfig) -> Self {
        assert!(
            config.warning_fraction > 0.0 && config.warning_fraction <= 1.0,
            "ECDD warning fraction must be in (0, 1]"
        );
        assert!(config.arl0 >= 2.0, "ECDD ARL0 must be at least 2");
        Self {
            ewma: Ewma::new(config.lambda),
            limit_cache: shared_limit_cache(config.lambda, config.arl0),
            config,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the defaults used in the paper's experiments
    /// (λ = 0.2, ARL₀ = 400).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(EcddConfig::default())
    }

    /// Current EWMA value of the error stream (diagnostics).
    #[must_use]
    pub fn ewma_value(&self) -> f64 {
        self.ewma.value()
    }

    /// Current running error-rate estimate (diagnostics).
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.ewma.mean()
    }

    /// Chernoff cumulant `K(s) = Σ_k ln(1 − p + p e^{s w_k})` for the EWMA
    /// weights of a geometric window (truncated when weights become
    /// negligible).
    fn cumulant(p: f64, lambda: f64, s: f64) -> f64 {
        let mut k = 0.0;
        let mut w = lambda;
        // Truncate once the weight is negligible; with λ = 0.2 this is ~45
        // terms.
        while w > 1e-4 {
            k += (1.0 - p + p * (s * w).exp()).ln();
            w *= 1.0 - lambda;
        }
        k
    }

    /// The Chernoff upper bound on `ln P(Z > c)` (the best exponent over s).
    fn ln_tail_bound(p: f64, lambda: f64, c: f64) -> f64 {
        // Minimise s·c − K(s) over s ≥ 0 by golden-section search; the
        // objective is convex in s.
        let objective = |s: f64| Self::cumulant(p, lambda, s) - s * c;
        let (mut lo, mut hi) = (0.0_f64, 200.0_f64);
        let phi = 0.5 * (5.0_f64.sqrt() - 1.0);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let mut f1 = objective(x1);
        let mut f2 = objective(x2);
        for _ in 0..60 {
            if f1 > f2 {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = objective(x2);
            } else {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = objective(x1);
            }
        }
        f1.min(f2).min(0.0)
    }

    /// Control limit `c` such that the Chernoff bound on `P(Z > c)` equals
    /// `1 / ARL0` for error rate `p`.
    fn control_limit(p: f64, lambda: f64, arl0: f64) -> f64 {
        let target = -(arl0.ln());
        if p <= 0.0 {
            // Degenerate: no errors observed yet; any error is an excursion.
            return lambda * 0.5;
        }
        if p >= 1.0 {
            return 1.0;
        }
        // Binary search for c in (p, 1]. ln_tail_bound is decreasing in c.
        let (mut lo, mut hi) = (p, 1.0_f64);
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if Self::ln_tail_bound(p, lambda, mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Cached lookup of the control limit for the current error-rate
    /// estimate.
    fn cached_limit(&mut self, p: f64) -> f64 {
        let idx = ((p / P_RESOLUTION).round() as usize).min(LIMIT_CACHE_LEN - 1);
        if let Some(c) = self.limit_cache.read().expect("ECDD limit cache poisoned")[idx] {
            return c;
        }
        // Compute outside the lock: the calibration is slow and its result
        // for a given slot is deterministic, so a concurrent duplicate
        // computation publishes the identical value.
        let rounded_p = idx as f64 * P_RESOLUTION;
        let c = Self::control_limit(rounded_p, self.config.lambda, self.config.arl0);
        self.limit_cache.write().expect("ECDD limit cache poisoned")[idx] = Some(c);
        c
    }
}

impl DriftDetector for Ecdd {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        let error = if value > 0.0 { 1.0 } else { 0.0 };
        self.ewma.push(error);

        if self.ewma.count() < self.config.min_instances {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        let p = self.ewma.mean();
        let z = self.ewma.value();
        let drift_limit = self.cached_limit(p);
        let warning_limit = p + self.config.warning_fraction * (drift_limit - p);

        let status = if z > drift_limit {
            self.drifts_detected += 1;
            self.ewma.reset();
            DriftStatus::Drift
        } else if z > warning_limit {
            DriftStatus::Warning
        } else {
            DriftStatus::Stable
        };
        self.last_status = status;
        status
    }

    fn reset(&mut self) {
        self.ewma.reset();
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "ECDD"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        false
    }

    /// Serializes the raw EWMA accumulator (count, running mean, `z`,
    /// `(1−λ)^{2t}`) and the lifetime counters. The control-limit cache is
    /// *not* serialized: it is a pure, deterministic function of the
    /// configuration and refills identically on demand.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// ECDD's state is a handful of scalars — there is no sequence payload
    /// to compress, so both encodings produce the identical value tree.
    fn snapshot_state_encoded(
        &self,
        _encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        let (count, mean, z, pow_2t) = self.ewma.to_raw();
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            // λ shapes every serialized EWMA weight, so it is recorded and
            // validated on restore — restoring λ=0.2 state into a λ=0.05
            // detector would be statistically wrong with no error.
            (
                "lambda".to_string(),
                serde::Value::Float(self.config.lambda),
            ),
            ("ewma_count".to_string(), serde::Value::UInt(count)),
            ("ewma_mean".to_string(), serde::Value::Float(mean)),
            ("ewma_z".to_string(), serde::Value::Float(z)),
            ("ewma_pow_2t".to_string(), serde::Value::Float(pow_2t)),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "ECDD")?;
        let lambda = float_field(state, "lambda")?;
        if lambda != self.config.lambda {
            return Err(invalid(format!(
                "snapshot was taken with lambda = {lambda}, detector has lambda = {}",
                self.config.lambda
            )));
        }
        let count: u64 = field(state, "ewma_count")?;
        let mean = float_field(state, "ewma_mean")?;
        let z = float_field(state, "ewma_z")?;
        let pow_2t = float_field(state, "ewma_pow_2t")?;
        if !(0.0..=1.0).contains(&pow_2t) {
            return Err(invalid(format!(
                "ewma_pow_2t ({pow_2t}) must lie in [0, 1]"
            )));
        }
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.ewma = Ewma::from_raw(self.config.lambda, count, mean, z, pow_2t);
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::bernoulli;

    #[test]
    fn control_limit_above_error_rate_and_monotone_in_arl0() {
        for &p in &[0.01, 0.05, 0.1, 0.2, 0.3, 0.5] {
            let c100 = Ecdd::control_limit(p, 0.2, 100.0);
            let c400 = Ecdd::control_limit(p, 0.2, 400.0);
            let c1000 = Ecdd::control_limit(p, 0.2, 1000.0);
            assert!(c100 > p, "p={p} c100={c100}");
            assert!(c400 >= c100, "p={p}");
            assert!(c1000 >= c400, "p={p}");
            assert!(c1000 <= 1.0);
        }
    }

    #[test]
    fn chernoff_bound_is_negative_above_mean() {
        // For c above the mean p the exponent must be strictly negative.
        for &p in &[0.05, 0.2, 0.4] {
            let bound = Ecdd::ln_tail_bound(p, 0.2, p + 0.2);
            assert!(bound < 0.0, "p={p} bound={bound}");
        }
        // At c = p it is (close to) zero.
        assert!(Ecdd::ln_tail_bound(0.3, 0.2, 0.3) > -1e-6);
    }

    #[test]
    fn stationary_stream_false_positive_rate_is_bounded() {
        // ECDD is, by design and by the OPTWIN paper's own measurements, the
        // noisiest detector in the line-up; bound the rate loosely and check
        // that a more conservative ARL0 fires no more often.
        let run = |arl0: f64| {
            let mut d = Ecdd::new(EcddConfig {
                arl0,
                ..EcddConfig::default()
            });
            let mut drifts = 0usize;
            for i in 0..40_000u64 {
                if d.add_element(bernoulli(i, 0.2)) == DriftStatus::Drift {
                    drifts += 1;
                }
            }
            drifts
        };
        let fp_100 = run(100.0);
        let fp_1000 = run(1_000.0);
        assert!(fp_1000 <= fp_100, "fp_1000={fp_1000} fp_100={fp_100}");
        assert!(fp_1000 < 40_000 / 100, "fp_1000 = {fp_1000}");
    }

    #[test]
    fn error_increase_detected_fast() {
        let mut d = Ecdd::with_defaults();
        let mut detected_after_drift = None;
        for i in 0..3_000u64 {
            let p = if i < 2_000 { 0.05 } else { 0.5 };
            if d.add_element(bernoulli(i, p)) == DriftStatus::Drift && i >= 2_000 {
                detected_after_drift = Some(i);
                break;
            }
        }
        let at = detected_after_drift.expect("ECDD must react to the error increase");
        assert!(
            at < 2_100,
            "ECDD should react within ~100 elements, got {at}"
        );
    }

    #[test]
    fn improvement_fires_far_less_than_degradation() {
        // The chart is one-sided (upward): after the error rate improves the
        // detector may still produce occasional false alarms, but no more
        // than during an actual degradation of the same magnitude.
        let count_drifts = |before: f64, after: f64| {
            let mut d = Ecdd::with_defaults();
            let mut drifts = 0usize;
            for i in 0..4_000u64 {
                let p = if i < 2_000 { before } else { after };
                if d.add_element(bernoulli(i, p)) == DriftStatus::Drift && i >= 2_000 {
                    drifts += 1;
                }
            }
            drifts
        };
        let improvement = count_drifts(0.5, 0.05);
        let degradation = count_drifts(0.05, 0.5);
        assert!(degradation >= 1);
        assert!(
            improvement <= degradation,
            "improvement={improvement} degradation={degradation}"
        );
    }

    #[test]
    fn diagnostics_and_reset() {
        let mut d = Ecdd::with_defaults();
        for i in 0..1_000u64 {
            d.add_element(bernoulli(i, 0.3));
        }
        assert!((d.error_rate() - 0.3).abs() < 0.1);
        assert!(d.ewma_value() >= 0.0 && d.ewma_value() <= 1.0);
        d.reset();
        assert_eq!(d.ewma_value(), 0.0);
        assert_eq!(d.name(), "ECDD");
        assert!(!d.supports_real_valued_input());
    }

    #[test]
    #[should_panic(expected = "warning fraction")]
    fn rejects_bad_warning_fraction() {
        let _ = Ecdd::new(EcddConfig {
            warning_fraction: 0.0,
            ..EcddConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "ARL0 must be at least")]
    fn rejects_bad_arl0() {
        let _ = Ecdd::new(EcddConfig {
            arl0: 1.0,
            ..EcddConfig::default()
        });
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let p = match i {
                    0..=2_999 => 0.05,
                    3_000..=5_499 => 0.35,
                    _ => 0.65,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Ecdd::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let p = match i {
                    0..=2_999 => 0.05,
                    3_000..=5_499 => 0.35,
                    _ => 0.65,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_snapshot_equivalence(
            Ecdd::with_defaults,
            &stream,
            &[0, 19, 1_500, 3_050, 8_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Ecdd::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Ecdd::with_defaults();
        for i in 0..500u64 {
            donor.add_element(bernoulli(i, 0.2));
        }
        let serde::Value::Object(mut fields) = donor.snapshot_state().unwrap() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "ewma_pow_2t" {
                *v = serde::Value::Float(2.5);
            }
        }
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("ewma_pow_2t"), "{err}");

        // A λ mismatch between snapshotter and restorer is rejected: the
        // serialized EWMA weights are a function of λ.
        let state = donor.snapshot_state().unwrap();
        let mut other = Ecdd::new(EcddConfig {
            lambda: 0.05,
            ..EcddConfig::default()
        });
        let err = other.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("lambda"), "{err}");
    }

    #[test]
    fn limit_registry_is_bounded_with_fifo_eviction() {
        // Cycle far more distinct (λ, ARL₀) calibrations than the cap. Each
        // ARL₀ here is unrealistic but valid; what matters is key identity.
        for i in 0..(3 * MAX_SHARED_LIMIT_CACHES) {
            let _ = shared_limit_cache(0.2, 100.0 + i as f64);
        }
        let len = limit_registry()
            .read()
            .expect("ECDD limit registry poisoned")
            .len();
        assert!(
            len <= MAX_SHARED_LIMIT_CACHES,
            "registry grew to {len} entries (cap {MAX_SHARED_LIMIT_CACHES})"
        );

        // The most recent calibration survived the churn and re-interning it
        // does not allocate a fresh cache...
        let last_arl0 = 100.0 + (3 * MAX_SHARED_LIMIT_CACHES - 1) as f64;
        let kept = shared_limit_cache(0.2, last_arl0);
        assert!(Arc::ptr_eq(&kept, &shared_limit_cache(0.2, last_arl0)));

        // ...while an evicted one is simply recomputed into a fresh cache:
        // detectors still behave identically either way because the limit is
        // a pure function of the calibration. Prove it on real decisions.
        let mut before = Ecdd::with_defaults();
        let evicted_cfg = EcddConfig::default();
        for _ in 0..MAX_SHARED_LIMIT_CACHES + 4 {
            let _ = shared_limit_cache(0.31, 7777.0 + before.elements_seen as f64);
            before.add_element(0.0);
        }
        let mut after = Ecdd::new(evicted_cfg);
        let mut reference = Ecdd::with_defaults();
        // `before` was built earlier; replay the same prefix into `reference`
        // so all three detectors have seen identical streams.
        for _ in 0..MAX_SHARED_LIMIT_CACHES + 4 {
            reference.add_element(0.0);
            after.add_element(0.0);
        }
        for i in 0..2_000u64 {
            let x = bernoulli(i, if i < 1_000 { 0.1 } else { 0.6 });
            let b = before.add_element(x);
            let r = reference.add_element(x);
            let a = after.add_element(x);
            assert_eq!(b, r, "element {i}");
            assert_eq!(r, a, "element {i}");
        }
    }
}
