//! EDDM — Early Drift Detection Method (Baena-García et al., 2006).
//!
//! EDDM tracks the *distance between consecutive errors* instead of the error
//! rate: while the learner is improving, errors get further apart. The
//! detector maintains the running mean `p'` and standard deviation `s'` of
//! that distance, remembers the maximum of `p' + 2 s'`, and compares the
//! current value against the maximum:
//!
//! * warning when `(p' + 2 s') / (p'_max + 2 s'_max) < α` (default 0.95),
//! * drift  when the ratio drops below `β` (default 0.90).
//!
//! Detection only starts after `min_errors` (30) errors have been observed.
//! On drift the statistics are reset.

use optwin_core::snapshot::{check_version, field, float_field};
use optwin_core::{CoreError, DriftDetector, DriftStatus};

/// Serialization format version of [`Eddm`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Eddm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EddmConfig {
    /// Warning threshold α (ratio of current to maximum distance statistic).
    pub alpha: f64,
    /// Drift threshold β (< α).
    pub beta: f64,
    /// Minimum number of *errors* observed before detection starts.
    pub min_errors: u64,
}

impl Default for EddmConfig {
    fn default() -> Self {
        Self {
            alpha: 0.95,
            beta: 0.90,
            min_errors: 30,
        }
    }
}

/// The EDDM drift detector.
#[derive(Debug, Clone)]
pub struct Eddm {
    config: EddmConfig,
    /// Elements since the last reset.
    n: u64,
    /// Index (within the current concept) of the previous error.
    last_error_at: Option<u64>,
    /// Number of errors since the last reset.
    error_count: u64,
    /// Running mean of the distance between errors.
    dist_mean: f64,
    /// Running M2 (Welford) of the distance between errors.
    dist_m2: f64,
    /// Maximum recorded value of `p' + 2 s'`.
    max_stat: f64,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl Eddm {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds do not satisfy `0 < β < α <= 1`.
    #[must_use]
    pub fn new(config: EddmConfig) -> Self {
        assert!(
            config.beta > 0.0 && config.beta < config.alpha && config.alpha <= 1.0,
            "EDDM thresholds must satisfy 0 < beta < alpha <= 1"
        );
        Self {
            config,
            n: 0,
            last_error_at: None,
            error_count: 0,
            dist_mean: 0.0,
            dist_m2: 0.0,
            max_stat: 0.0,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the original paper's defaults
    /// (α = 0.95, β = 0.90, 30 errors).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(EddmConfig::default())
    }

    /// Mean distance between errors since the last reset (diagnostics).
    #[must_use]
    pub fn mean_error_distance(&self) -> f64 {
        self.dist_mean
    }

    fn restart(&mut self) {
        self.n = 0;
        self.last_error_at = None;
        self.error_count = 0;
        self.dist_mean = 0.0;
        self.dist_m2 = 0.0;
        self.max_stat = 0.0;
    }
}

impl DriftDetector for Eddm {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        self.n += 1;
        let is_error = value > 0.0;

        if !is_error {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        // Distance from the previous error (in number of instances).
        let distance = match self.last_error_at {
            Some(prev) => (self.n - prev) as f64,
            None => self.n as f64,
        };
        self.last_error_at = Some(self.n);
        self.error_count += 1;

        // Welford update of the distance statistics.
        let delta = distance - self.dist_mean;
        self.dist_mean += delta / self.error_count as f64;
        let delta2 = distance - self.dist_mean;
        self.dist_m2 += delta * delta2;
        let std = if self.error_count > 1 {
            (self.dist_m2 / self.error_count as f64).max(0.0).sqrt()
        } else {
            0.0
        };

        let stat = self.dist_mean + 2.0 * std;

        if self.error_count < self.config.min_errors {
            self.max_stat = self.max_stat.max(stat);
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        if stat > self.max_stat {
            self.max_stat = stat;
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        let ratio = if self.max_stat > 0.0 {
            stat / self.max_stat
        } else {
            1.0
        };
        let status = if ratio < self.config.beta {
            self.drifts_detected += 1;
            self.restart();
            DriftStatus::Drift
        } else if ratio < self.config.alpha {
            DriftStatus::Warning
        } else {
            DriftStatus::Stable
        };
        self.last_status = status;
        status
    }

    fn reset(&mut self) {
        self.restart();
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "EDDM"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        false
    }

    /// Serializes the raw error-distance accumulators (Welford mean/M2, last
    /// error position, recorded maximum) verbatim for bit-exact resumption.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// EDDM's state is a handful of scalars — there is no sequence payload
    /// to compress, so both encodings produce the identical value tree.
    fn snapshot_state_encoded(
        &self,
        _encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            ("n".to_string(), serde::Value::UInt(self.n)),
            ("last_error_at".to_string(), self.last_error_at.to_value()),
            (
                "error_count".to_string(),
                serde::Value::UInt(self.error_count),
            ),
            ("dist_mean".to_string(), serde::Value::Float(self.dist_mean)),
            ("dist_m2".to_string(), serde::Value::Float(self.dist_m2)),
            ("max_stat".to_string(), serde::Value::Float(self.max_stat)),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "EDDM")?;
        let n: u64 = field(state, "n")?;
        let last_error_at: Option<u64> = field(state, "last_error_at")?;
        if let Some(at) = last_error_at {
            if at > n {
                return Err(optwin_core::snapshot::invalid(format!(
                    "last_error_at ({at}) exceeds n ({n})"
                )));
            }
        }
        let error_count: u64 = field(state, "error_count")?;
        let dist_mean = float_field(state, "dist_mean")?;
        let dist_m2 = float_field(state, "dist_m2")?;
        let max_stat = float_field(state, "max_stat")?;
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.n = n;
        self.last_error_at = last_error_at;
        self.error_count = error_count;
        self.dist_mean = dist_mean;
        self.dist_m2 = dist_m2;
        self.max_stat = max_stat;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::bernoulli;

    #[test]
    #[should_panic(expected = "thresholds must satisfy")]
    fn rejects_inconsistent_thresholds() {
        let _ = Eddm::new(EddmConfig {
            alpha: 0.9,
            beta: 0.95,
            min_errors: 30,
        });
    }

    #[test]
    fn correct_predictions_never_fire() {
        let mut d = Eddm::with_defaults();
        for _ in 0..10_000 {
            assert_eq!(d.add_element(0.0), DriftStatus::Stable);
        }
        assert_eq!(d.drifts_detected(), 0);
    }

    #[test]
    fn shrinking_error_distance_detected() {
        // EDDM produces occasional false positives on stationary streams (the
        // paper measured 6–17 per run), so this test does not require a
        // perfectly silent pre-drift phase; it requires that a detection
        // lands shortly after the true change point.
        let mut d = Eddm::with_defaults();
        let mut detections = Vec::new();
        for i in 0..20_000u64 {
            // Errors get much more frequent after the drift point.
            let p = if i < 10_000 { 0.02 } else { 0.40 };
            if d.add_element(bernoulli(i, p)) == DriftStatus::Drift {
                detections.push(i);
            }
        }
        assert!(
            detections.iter().any(|&i| (10_000..10_600).contains(&i)),
            "no detection shortly after the drift: {detections:?}"
        );
    }

    #[test]
    fn stationary_error_rate_fp_rate_is_bounded() {
        let mut d = Eddm::with_defaults();
        let mut drifts = 0;
        for i in 0..30_000u64 {
            if d.add_element(bernoulli(i, 0.1)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        // EDDM is the baseline with the highest FP rate after ECDD in the
        // paper's measurements; bound it loosely.
        assert!(drifts <= 60, "excessive false positives: {drifts}");
    }

    #[test]
    fn mean_error_distance_tracks_inverse_rate() {
        let mut d = Eddm::with_defaults();
        for i in 0..5_000u64 {
            d.add_element(bernoulli(i, 0.1));
        }
        // Errors at rate 0.1 → average spacing near 10.
        assert!((d.mean_error_distance() - 10.0).abs() < 3.0);
    }

    #[test]
    fn metadata_and_reset() {
        let mut d = Eddm::with_defaults();
        assert_eq!(d.name(), "EDDM");
        assert!(!d.supports_real_valued_input());
        for i in 0..200u64 {
            d.add_element(bernoulli(i, 0.2));
        }
        d.reset();
        assert_eq!(d.mean_error_distance(), 0.0);
        assert_eq!(d.elements_seen(), 200);
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..9_000u64)
            .map(|i| {
                let p = match i {
                    0..=3_999 => 0.10,
                    4_000..=6_999 => 0.45,
                    _ => 0.75,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Eddm::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..9_000u64)
            .map(|i| {
                let p = match i {
                    0..=3_999 => 0.10,
                    4_000..=6_999 => 0.45,
                    _ => 0.75,
                };
                bernoulli(i, p)
            })
            .collect();
        // Include a cut in the pristine state (no error seen yet is
        // impossible at rate 0.1 after a few elements, so cut 0 covers it).
        crate::test_util::assert_snapshot_equivalence(
            Eddm::with_defaults,
            &stream,
            &[0, 23, 2_500, 4_200, 9_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Eddm::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Eddm::with_defaults();
        for i in 0..300u64 {
            donor.add_element(bernoulli(i, 0.2));
        }
        // An inconsistent error position is rejected.
        let serde::Value::Object(mut fields) = donor.snapshot_state().unwrap() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "last_error_at" {
                *v = serde::Value::UInt(10_000);
            }
        }
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("last_error_at"), "{err}");
    }
}
