//! Declarative, serializable detector specifications.
//!
//! [`DetectorSpec`] is the config-driven front door to every detector the
//! workspace ships: one serde-serializable enum covering OPTWIN and all
//! seven baselines with their **full parameter sets**, a [`DetectorSpec::build`]
//! method producing a ready-to-run boxed [`DriftDetector`], and a canonical
//! textual grammar for CLIs and config files:
//!
//! ```text
//! <id>                      # the detector with its reference defaults
//! <id>:<key>=<value>,...    # defaults with selected fields overridden
//! ```
//!
//! where `<id>` is one of `optwin`, `adwin`, `ddm`, `eddm`, `stepd`, `ecdd`,
//! `page_hinkley`, `kswin` and the keys are exactly the fields of the
//! detector's config struct (e.g. `adwin:delta=0.002` or
//! `kswin:window_size=300,stat_size=30,alpha=0.0001`).
//!
//! Two **composite** ids nest whole specs as values (see
//! [`crate::composite`]):
//!
//! ```text
//! cascade:guard=<spec>,confirm=<spec>,replay=256,cooldown=256
//! ensemble:vote=2,members=[<spec>|<spec>|...]
//! ```
//!
//! Nested spec values may be wrapped in `[`…`]`; the canonical `Display`
//! form always wraps them, and the brackets are required whenever the
//! nested spec itself contains a top-level comma (parameter separators are
//! split bracket-aware, so `cascade:guard=ddm,confirm=optwin:delta=0.01`
//! parses without any). Composites nest at most one level deep — a cascade
//! inside an ensemble is fine, a cascade inside a cascade inside an
//! ensemble is rejected by [`DetectorSpec::validate`].
//!
//! [`std::fmt::Display`] prints the **complete** parameter set, and
//! `Display` → [`std::str::FromStr`] is an exact round trip (floats use
//! Rust's shortest round-trip formatting), so a spec echoed anywhere — a
//! log line, an engine snapshot, a config file — can always be parsed back
//! into the identical spec. The serde form is that same string, which keeps
//! one grammar as the single source of truth and makes engine snapshots
//! self-describing *and* hand-editable.
//!
//! This type lives in `optwin-baselines` rather than `optwin-core` because
//! [`DetectorSpec::build`] must construct the baseline detector types, and
//! baselines sit above core in the dependency graph; core only defines the
//! [`DriftDetector`] contract the built boxes implement.
//!
//! ```
//! use optwin_baselines::DetectorSpec;
//!
//! let spec: DetectorSpec = "adwin:delta=0.01".parse().unwrap();
//! let mut detector = spec.build().unwrap();
//! assert_eq!(detector.name(), "ADWIN");
//! detector.add_element(0.0);
//! // The printed form is complete and parses back to the same spec.
//! let echoed: DetectorSpec = spec.to_string().parse().unwrap();
//! assert_eq!(echoed, spec);
//! ```

// `!(x > 0.0)` (rather than `x <= 0.0`) is the workspace idiom for rejecting
// out-of-range *and NaN* parameters in one comparison (mirrors optwin-core).
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use std::fmt;
use std::str::FromStr;

use optwin_core::{CoreError, DriftDetector, DriftDirection, Optwin, OptwinConfig};

use crate::composite::{Cascade, CascadeConfig, Ensemble, EnsembleConfig};
use crate::{
    Adwin, AdwinConfig, Ddm, DdmConfig, Ecdd, EcddConfig, Eddm, EddmConfig, Kswin, KswinConfig,
    PageHinkley, PageHinkleyConfig, Stepd, StepdConfig,
};

/// A declarative, serializable description of one detector instance: which
/// detector to run and every parameter it takes.
///
/// See the [module documentation](self) for the textual grammar and the
/// design rationale. Construct via [`FromStr`] (`"adwin:delta=0.002"`), via
/// the enum literal, or via [`DetectorSpec::default_for`]; turn into a
/// running detector with [`DetectorSpec::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorSpec {
    /// OPTWIN with its full [`OptwinConfig`]. Built through the process-wide
    /// cut-table registry, so every instance with an equivalent
    /// configuration shares one table.
    Optwin {
        /// The detector configuration.
        config: OptwinConfig,
    },
    /// ADWIN.
    Adwin {
        /// The detector configuration.
        config: AdwinConfig,
    },
    /// DDM.
    Ddm {
        /// The detector configuration.
        config: DdmConfig,
    },
    /// EDDM.
    Eddm {
        /// The detector configuration.
        config: EddmConfig,
    },
    /// STEPD.
    Stepd {
        /// The detector configuration.
        config: StepdConfig,
    },
    /// ECDD.
    Ecdd {
        /// The detector configuration.
        config: EcddConfig,
    },
    /// Page–Hinkley.
    PageHinkley {
        /// The detector configuration.
        config: PageHinkleyConfig,
    },
    /// KSWIN.
    Kswin {
        /// The detector configuration.
        config: KswinConfig,
    },
    /// A cheap-first guard/confirmer cascade ([`Cascade`]).
    Cascade {
        /// The composite configuration, holding the nested child specs.
        config: CascadeConfig,
    },
    /// A k-of-N voting ensemble ([`Ensemble`]).
    Ensemble {
        /// The composite configuration, holding the nested member specs.
        config: EnsembleConfig,
    },
}

/// The grammar ids of every detector kind, in the paper's order.
pub const DETECTOR_IDS: [&str; 8] = [
    "optwin",
    "adwin",
    "ddm",
    "eddm",
    "stepd",
    "ecdd",
    "page_hinkley",
    "kswin",
];

fn invalid(field: &'static str, message: impl Into<String>) -> CoreError {
    CoreError::InvalidConfig {
        field,
        message: message.into(),
    }
}

impl DetectorSpec {
    /// The spec with the reference defaults for the given grammar id (same
    /// accepted spellings as [`FromStr`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown id.
    pub fn default_for(id: &str) -> Result<Self, CoreError> {
        match id.to_ascii_lowercase().as_str() {
            "optwin" => Ok(DetectorSpec::Optwin {
                config: OptwinConfig::default(),
            }),
            "adwin" => Ok(DetectorSpec::Adwin {
                config: AdwinConfig::default(),
            }),
            "ddm" => Ok(DetectorSpec::Ddm {
                config: DdmConfig::default(),
            }),
            "eddm" => Ok(DetectorSpec::Eddm {
                config: EddmConfig::default(),
            }),
            "stepd" => Ok(DetectorSpec::Stepd {
                config: StepdConfig::default(),
            }),
            "ecdd" => Ok(DetectorSpec::Ecdd {
                config: EcddConfig::default(),
            }),
            "page_hinkley" | "page-hinkley" | "pagehinkley" | "ph" => {
                Ok(DetectorSpec::PageHinkley {
                    config: PageHinkleyConfig::default(),
                })
            }
            "kswin" => Ok(DetectorSpec::Kswin {
                config: KswinConfig::default(),
            }),
            "cascade" => Ok(DetectorSpec::Cascade {
                config: CascadeConfig::default(),
            }),
            "ensemble" => Ok(DetectorSpec::Ensemble {
                config: EnsembleConfig::default(),
            }),
            other => Err(invalid(
                "detector",
                format!(
                    "unknown detector `{other}`; expected one of: {}, cascade, ensemble",
                    DETECTOR_IDS.join(", ")
                ),
            )),
        }
    }

    /// All eight detector kinds with their reference defaults, in the
    /// paper's order.
    #[must_use]
    pub fn all_defaults() -> Vec<DetectorSpec> {
        DETECTOR_IDS
            .iter()
            .map(|id| Self::default_for(id).expect("listed ids are valid"))
            .collect()
    }

    /// The grammar id of this spec (`"adwin"`, `"page_hinkley"`, …).
    #[must_use]
    pub fn id(&self) -> &'static str {
        match self {
            DetectorSpec::Optwin { .. } => "optwin",
            DetectorSpec::Adwin { .. } => "adwin",
            DetectorSpec::Ddm { .. } => "ddm",
            DetectorSpec::Eddm { .. } => "eddm",
            DetectorSpec::Stepd { .. } => "stepd",
            DetectorSpec::Ecdd { .. } => "ecdd",
            DetectorSpec::PageHinkley { .. } => "page_hinkley",
            DetectorSpec::Kswin { .. } => "kswin",
            DetectorSpec::Cascade { .. } => "cascade",
            DetectorSpec::Ensemble { .. } => "ensemble",
        }
    }

    /// Composite nesting depth: `0` for a plain detector, `1 +` the deepest
    /// child for a composite. [`DetectorSpec::validate`] caps this at 2
    /// (a cascade inside an ensemble is the deepest supported shape).
    fn depth(&self) -> usize {
        match self {
            DetectorSpec::Cascade { config } => {
                1 + config.guard.depth().max(config.confirm.depth())
            }
            DetectorSpec::Ensemble { config } => {
                1 + config.members.iter().map(Self::depth).max().unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// The stable name the built detector reports through
    /// [`DriftDetector::name`] (`"ADWIN"`, `"PageHinkley"`, …) — what
    /// engine snapshots record and validate against.
    #[must_use]
    pub fn detector_name(&self) -> &'static str {
        match self {
            DetectorSpec::Optwin { .. } => "OPTWIN",
            DetectorSpec::Adwin { .. } => "ADWIN",
            DetectorSpec::Ddm { .. } => "DDM",
            DetectorSpec::Eddm { .. } => "EDDM",
            DetectorSpec::Stepd { .. } => "STEPD",
            DetectorSpec::Ecdd { .. } => "ECDD",
            DetectorSpec::PageHinkley { .. } => "PageHinkley",
            DetectorSpec::Kswin { .. } => "KSWIN",
            DetectorSpec::Cascade { .. } => "CASCADE",
            DetectorSpec::Ensemble { .. } => "ENSEMBLE",
        }
    }

    /// `true` when the described detector only accepts binary error
    /// indicators (DDM, EDDM, ECDD), mirroring
    /// [`DriftDetector::supports_real_valued_input`].
    #[must_use]
    pub fn binary_only(&self) -> bool {
        match self {
            DetectorSpec::Ddm { .. } | DetectorSpec::Eddm { .. } | DetectorSpec::Ecdd { .. } => {
                true
            }
            DetectorSpec::Cascade { config } => {
                config.guard.binary_only() || config.confirm.binary_only()
            }
            DetectorSpec::Ensemble { config } => config.members.iter().any(Self::binary_only),
            _ => false,
        }
    }

    /// Validates every parameter, mirroring the constructor contracts of the
    /// underlying detectors (which panic on violation — this is the
    /// non-panicking front door).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        // One-sided bounds below (e.g. `lambda > 0`) would let `inf` (and an
        // unvalidated field NaN) through `f64::from_str`, producing a
        // detector whose every threshold comparison silently evaluates
        // false — so every float parameter is first required to be finite.
        let finite = |field: &'static str, x: f64| {
            if x.is_finite() {
                Ok(())
            } else {
                Err(invalid(field, format!("must be finite, got {x}")))
            }
        };
        match self {
            DetectorSpec::Optwin { config } => config.validate(),
            DetectorSpec::Adwin { config } => {
                if !(config.delta > 0.0 && config.delta < 1.0) {
                    return Err(invalid(
                        "delta",
                        format!("must lie in (0, 1), got {}", config.delta),
                    ));
                }
                if config.clock == 0 {
                    return Err(invalid("clock", "must be positive"));
                }
                Ok(())
            }
            DetectorSpec::Ddm { config } => {
                finite("warning_level", config.warning_level)?;
                finite("drift_level", config.drift_level)?;
                if !(config.warning_level > 0.0 && config.drift_level > config.warning_level) {
                    return Err(invalid(
                        "drift_level",
                        format!(
                            "levels must satisfy 0 < warning_level < drift_level, got {} / {}",
                            config.warning_level, config.drift_level
                        ),
                    ));
                }
                Ok(())
            }
            DetectorSpec::Eddm { config } => {
                if !(config.beta > 0.0 && config.beta < config.alpha && config.alpha <= 1.0) {
                    return Err(invalid(
                        "beta",
                        format!(
                            "thresholds must satisfy 0 < beta < alpha <= 1, got beta={} alpha={}",
                            config.beta, config.alpha
                        ),
                    ));
                }
                Ok(())
            }
            DetectorSpec::Stepd { config } => {
                if config.window_size == 0 {
                    return Err(invalid("window_size", "must be positive"));
                }
                if !(config.alpha_drift > 0.0
                    && config.alpha_drift < config.alpha_warning
                    && config.alpha_warning < 1.0)
                {
                    return Err(invalid(
                        "alpha_drift",
                        format!(
                            "levels must satisfy 0 < alpha_drift < alpha_warning < 1, got {} / {}",
                            config.alpha_drift, config.alpha_warning
                        ),
                    ));
                }
                Ok(())
            }
            DetectorSpec::Ecdd { config } => {
                finite("arl0", config.arl0)?;
                if !(config.lambda > 0.0 && config.lambda <= 1.0) {
                    return Err(invalid(
                        "lambda",
                        format!("must lie in (0, 1], got {}", config.lambda),
                    ));
                }
                if !(config.arl0 >= 2.0) {
                    return Err(invalid(
                        "arl0",
                        format!("must be at least 2, got {}", config.arl0),
                    ));
                }
                if !(config.warning_fraction > 0.0 && config.warning_fraction <= 1.0) {
                    return Err(invalid(
                        "warning_fraction",
                        format!("must lie in (0, 1], got {}", config.warning_fraction),
                    ));
                }
                Ok(())
            }
            DetectorSpec::PageHinkley { config } => {
                finite("delta", config.delta)?;
                finite("lambda", config.lambda)?;
                if !(config.lambda > 0.0) {
                    return Err(invalid(
                        "lambda",
                        format!("must be positive, got {}", config.lambda),
                    ));
                }
                if !(config.alpha > 0.0 && config.alpha <= 1.0) {
                    return Err(invalid(
                        "alpha",
                        format!("must lie in (0, 1], got {}", config.alpha),
                    ));
                }
                if !(config.warning_fraction > 0.0 && config.warning_fraction <= 1.0) {
                    return Err(invalid(
                        "warning_fraction",
                        format!("must lie in (0, 1], got {}", config.warning_fraction),
                    ));
                }
                Ok(())
            }
            DetectorSpec::Kswin { config } => {
                if config.stat_size == 0 {
                    return Err(invalid("stat_size", "must be positive"));
                }
                if config.window_size <= 2 * config.stat_size {
                    return Err(invalid(
                        "window_size",
                        format!(
                            "must exceed twice the stat_size ({}), got {}",
                            config.stat_size, config.window_size
                        ),
                    ));
                }
                if !(config.alpha > 0.0 && config.alpha < 1.0) {
                    return Err(invalid(
                        "alpha",
                        format!("must lie in (0, 1), got {}", config.alpha),
                    ));
                }
                Ok(())
            }
            DetectorSpec::Cascade { config } => {
                if self.depth() > 2 {
                    return Err(invalid(
                        "detector",
                        format!(
                            "composite nesting depth {} exceeds the maximum of 2",
                            self.depth()
                        ),
                    ));
                }
                if config.replay == 0 {
                    return Err(invalid("replay", "must be positive"));
                }
                if config.cooldown == 0 {
                    return Err(invalid("cooldown", "must be positive"));
                }
                config.guard.validate()?;
                config.confirm.validate()
            }
            DetectorSpec::Ensemble { config } => {
                if self.depth() > 2 {
                    return Err(invalid(
                        "detector",
                        format!(
                            "composite nesting depth {} exceeds the maximum of 2",
                            self.depth()
                        ),
                    ));
                }
                if config.members.is_empty() {
                    return Err(invalid("members", "must name at least one member"));
                }
                if config.vote == 0 || config.vote > config.members.len() {
                    return Err(invalid(
                        "vote",
                        format!(
                            "must lie in 1..={}, got {}",
                            config.members.len(),
                            config.vote
                        ),
                    ));
                }
                if config.horizon == 0 {
                    return Err(invalid("horizon", "must be positive"));
                }
                for member in &config.members {
                    member.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Validates the spec and constructs a ready-to-run boxed detector.
    /// OPTWIN instances share cut tables through the process-wide
    /// [`optwin_core::CutTableRegistry`], so building thousands of
    /// identically configured specs stays cheap.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any parameter is out of
    /// range (this method never panics, unlike the raw detector
    /// constructors).
    pub fn build(&self) -> Result<Box<dyn DriftDetector + Send>, CoreError> {
        self.validate()?;
        Ok(match self {
            DetectorSpec::Optwin { config } => Box::new(Optwin::with_shared_table(config.clone())?),
            DetectorSpec::Adwin { config } => Box::new(Adwin::new(config.clone())),
            DetectorSpec::Ddm { config } => Box::new(Ddm::new(*config)),
            DetectorSpec::Eddm { config } => Box::new(Eddm::new(*config)),
            DetectorSpec::Stepd { config } => Box::new(Stepd::new(*config)),
            DetectorSpec::Ecdd { config } => Box::new(Ecdd::new(*config)),
            DetectorSpec::PageHinkley { config } => Box::new(PageHinkley::new(*config)),
            DetectorSpec::Kswin { config } => Box::new(Kswin::new(*config)),
            DetectorSpec::Cascade { config } => Box::new(Cascade::new(config.clone())?),
            DetectorSpec::Ensemble { config } => Box::new(Ensemble::new(config.clone())?),
        })
    }

    /// A human-readable listing of the grammar — every detector id with its
    /// keys and defaults — for CLI `--help`-style error messages.
    #[must_use]
    pub fn grammar_help() -> String {
        let mut out = String::from(
            "detector specs are `<id>` or `<id>:<key>=<value>,...`; valid specs (with their \
             defaults):\n",
        );
        for spec in Self::all_defaults() {
            out.push_str("  ");
            out.push_str(&spec.to_string());
            out.push('\n');
        }
        out.push_str(
            "composite specs nest whole specs as values (brackets optional when the nested \
             spec has no top-level comma):\n",
        );
        for id in ["cascade", "ensemble"] {
            out.push_str("  ");
            out.push_str(
                &Self::default_for(id)
                    .expect("composite ids are valid")
                    .to_string(),
            );
            out.push('\n');
        }
        out.push_str("  e.g. cascade:guard=ddm,confirm=optwin:delta=0.01\n");
        out
    }
}

impl fmt::Display for DetectorSpec {
    /// Prints the id followed by the **complete** parameter set, so the
    /// output always parses back to an identical spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorSpec::Optwin { config } => {
                let warning = match config.warning_delta {
                    Some(w) => w.to_string(),
                    None => "none".to_string(),
                };
                let direction = match config.direction {
                    DriftDirection::DegradationOnly => "degradation_only",
                    DriftDirection::Both => "both",
                };
                write!(
                    f,
                    "optwin:delta={},rho={},w_min={},w_max={},eta={},direction={direction},\
                     warning_delta={warning}",
                    config.delta, config.rho, config.w_min, config.w_max, config.eta
                )
            }
            DetectorSpec::Adwin { config } => write!(
                f,
                "adwin:delta={},clock={},min_window_len={},min_sub_window_len={}",
                config.delta, config.clock, config.min_window_len, config.min_sub_window_len
            ),
            DetectorSpec::Ddm { config } => write!(
                f,
                "ddm:min_instances={},warning_level={},drift_level={}",
                config.min_instances, config.warning_level, config.drift_level
            ),
            DetectorSpec::Eddm { config } => write!(
                f,
                "eddm:alpha={},beta={},min_errors={}",
                config.alpha, config.beta, config.min_errors
            ),
            DetectorSpec::Stepd { config } => write!(
                f,
                "stepd:window_size={},alpha_drift={},alpha_warning={}",
                config.window_size, config.alpha_drift, config.alpha_warning
            ),
            DetectorSpec::Ecdd { config } => write!(
                f,
                "ecdd:lambda={},arl0={},min_instances={},warning_fraction={}",
                config.lambda, config.arl0, config.min_instances, config.warning_fraction
            ),
            DetectorSpec::PageHinkley { config } => write!(
                f,
                "page_hinkley:min_instances={},delta={},lambda={},alpha={},warning_fraction={}",
                config.min_instances,
                config.delta,
                config.lambda,
                config.alpha,
                config.warning_fraction
            ),
            DetectorSpec::Kswin { config } => write!(
                f,
                "kswin:window_size={},stat_size={},alpha={}",
                config.window_size, config.stat_size, config.alpha
            ),
            // Nested spec values are always bracketed in the canonical form,
            // so the complete child parameter lists (which contain commas)
            // survive the bracket-aware top-level split on re-parse.
            DetectorSpec::Cascade { config } => write!(
                f,
                "cascade:guard=[{}],confirm=[{}],replay={},cooldown={}",
                config.guard, config.confirm, config.replay, config.cooldown
            ),
            DetectorSpec::Ensemble { config } => {
                write!(
                    f,
                    "ensemble:vote={},horizon={},members=[",
                    config.vote, config.horizon
                )?;
                for (i, member) in config.members.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    write!(f, "{member}")?;
                }
                f.write_str("]")
            }
        }
    }
}

fn parse_num<T: FromStr>(key: &'static str, value: &str) -> Result<T, CoreError> {
    value
        .parse()
        .map_err(|_| invalid(key, format!("cannot parse `{value}`")))
}

/// Splits `s` at every `sep` that sits outside `[`…`]` brackets, so nested
/// spec values survive the parameter split intact. Rejects unbalanced
/// brackets.
fn split_top_level(s: &str, sep: char) -> Result<Vec<&str>, CoreError> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| invalid("detector", format!("unbalanced `]` in `{s}`")))?;
            }
            c if c == sep && depth == 0 => {
                parts.push(&s[start..i]);
                start = i + sep.len_utf8();
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(invalid("detector", format!("unbalanced `[` in `{s}`")));
    }
    parts.push(&s[start..]);
    Ok(parts)
}

/// Strips one fully-wrapping `[`…`]` layer, if present. The leading `[`
/// must be closed by the final `]` — `[a]|[b]` is left untouched.
fn strip_brackets(s: &str) -> &str {
    let trimmed = s.trim();
    let Some(inner) = trimmed
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
    else {
        return trimmed;
    };
    let mut depth = 1usize;
    for c in inner.chars() {
        match c {
            '[' => depth += 1,
            ']' => {
                if depth == 1 {
                    return trimmed;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    inner.trim()
}

/// Parses a nested spec value (optionally bracketed) with the strict
/// grammar; leniency only ever applies to the top-level key set.
fn parse_nested(key: &'static str, value: &str) -> Result<DetectorSpec, CoreError> {
    let inner = strip_brackets(value);
    inner
        .parse()
        .map_err(|e: CoreError| invalid(key, format!("nested spec `{inner}` is invalid: {e}")))
}

impl FromStr for DetectorSpec {
    type Err = CoreError;

    /// Parses `<id>` or `<id>:<key>=<value>,...`. Unspecified keys keep the
    /// detector's reference defaults; the assembled spec is validated before
    /// it is returned. Unknown keys are an error — use
    /// [`DetectorSpec::parse_lenient`] to skip them instead.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse_internal(s, false).map(|(spec, _)| spec)
    }
}

/// Why a `key=value` override could not be applied: the key does not exist
/// on this detector (recoverable in lenient mode), or its value is invalid
/// (always fatal).
enum FieldError {
    /// The key is not a field of the detector's config.
    Unknown {
        /// Comma-separated list of the keys the detector does accept.
        valid_keys: &'static str,
    },
    /// The key exists but its value failed to parse or validate.
    Invalid(CoreError),
}

impl From<CoreError> for FieldError {
    fn from(error: CoreError) -> Self {
        FieldError::Invalid(error)
    }
}

impl DetectorSpec {
    /// Parses the spec grammar like [`FromStr`], but **skips unknown keys**,
    /// returning them as human-readable warnings instead of erroring — the
    /// forward-compatible mode for configuration produced by external (or
    /// newer) tools whose specs may carry keys this build does not know.
    ///
    /// Everything else stays strict: unknown detector ids, malformed
    /// `key=value` pairs, unparsable values and out-of-range parameters are
    /// still errors (a typo in a *value* silently changing behaviour is not
    /// forward compatibility).
    ///
    /// ```
    /// use optwin_baselines::DetectorSpec;
    ///
    /// let (spec, warnings) =
    ///     DetectorSpec::parse_lenient("adwin:delta=0.01,future_knob=7").unwrap();
    /// assert_eq!(spec.id(), "adwin");
    /// assert_eq!(warnings.len(), 1);
    /// assert!(warnings[0].contains("future_knob"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] under the same conditions as
    /// [`FromStr`], minus the unknown-key case.
    pub fn parse_lenient(s: &str) -> Result<(Self, Vec<String>), CoreError> {
        Self::parse_internal(s, true)
    }

    /// The shared grammar parser behind [`FromStr`] (strict) and
    /// [`DetectorSpec::parse_lenient`].
    fn parse_internal(s: &str, lenient: bool) -> Result<(Self, Vec<String>), CoreError> {
        let s = s.trim();
        let (id, params) = match s.split_once(':') {
            Some((id, params)) => (id.trim(), Some(params)),
            None => (s, None),
        };
        let mut spec = Self::default_for(id)?;
        let mut warnings = Vec::new();

        if let Some(params) = params {
            if params.trim().is_empty() {
                return Err(invalid(
                    "detector",
                    format!("`{id}:` has an empty parameter list; drop the `:` for defaults"),
                ));
            }
            let mut explicit_warning_delta = false;
            for pair in split_top_level(params, ',')? {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(invalid(
                        "detector",
                        format!("malformed parameter `{pair}` (expected `key=value`)"),
                    ));
                };
                let (key, value) = (key.trim(), value.trim());
                explicit_warning_delta |= key == "warning_delta";
                match spec.set_field(key, value) {
                    Ok(()) => {}
                    Err(FieldError::Unknown { valid_keys }) if lenient => warnings.push(format!(
                        "unknown key `{key}` for `{}` ignored; valid keys: {valid_keys}",
                        spec.id()
                    )),
                    Err(FieldError::Unknown { valid_keys }) => {
                        return Err(invalid(
                            "detector",
                            format!(
                                "unknown key `{key}` for `{}`; valid keys: {valid_keys}",
                                spec.id()
                            ),
                        ))
                    }
                    Err(FieldError::Invalid(error)) => return Err(error),
                }
            }
            // OPTWIN's warning confidence defaults to 0.95, which only makes
            // sense below the drift confidence. When the user overrides
            // `delta` below that default without saying anything about
            // warnings (e.g. `optwin:delta=0.01`), the *default* is dropped
            // rather than rejecting the spec — an explicit `warning_delta`
            // is still validated strictly.
            if !explicit_warning_delta {
                if let DetectorSpec::Optwin { config } = &mut spec {
                    if config.warning_delta.is_some_and(|w| w >= config.delta) {
                        config.warning_delta = None;
                    }
                }
            }
        }
        spec.validate()?;
        Ok((spec, warnings))
    }

    /// Applies one `key=value` override from the textual grammar.
    fn set_field(&mut self, key: &str, value: &str) -> Result<(), FieldError> {
        let unknown = |keys: &'static str| FieldError::Unknown { valid_keys: keys };
        match self {
            DetectorSpec::Optwin { config } => match key {
                "delta" => config.delta = parse_num("delta", value)?,
                "rho" => config.rho = parse_num("rho", value)?,
                "w_min" => config.w_min = parse_num("w_min", value)?,
                "w_max" => config.w_max = parse_num("w_max", value)?,
                "eta" => config.eta = parse_num("eta", value)?,
                "direction" => {
                    config.direction = match value.to_ascii_lowercase().as_str() {
                        "degradation_only" | "degradation-only" => DriftDirection::DegradationOnly,
                        "both" => DriftDirection::Both,
                        other => {
                            return Err(invalid(
                                "direction",
                                format!("expected `degradation_only` or `both`, got `{other}`"),
                            )
                            .into())
                        }
                    }
                }
                "warning_delta" => {
                    config.warning_delta = if value.eq_ignore_ascii_case("none") {
                        None
                    } else {
                        Some(parse_num("warning_delta", value)?)
                    }
                }
                _ => {
                    return Err(unknown(
                        "delta, rho, w_min, w_max, eta, direction, warning_delta",
                    ))
                }
            },
            DetectorSpec::Adwin { config } => match key {
                "delta" => config.delta = parse_num("delta", value)?,
                "clock" => config.clock = parse_num("clock", value)?,
                "min_window_len" => config.min_window_len = parse_num("min_window_len", value)?,
                "min_sub_window_len" => {
                    config.min_sub_window_len = parse_num("min_sub_window_len", value)?;
                }
                _ => return Err(unknown("delta, clock, min_window_len, min_sub_window_len")),
            },
            DetectorSpec::Ddm { config } => match key {
                "min_instances" => config.min_instances = parse_num("min_instances", value)?,
                "warning_level" => config.warning_level = parse_num("warning_level", value)?,
                "drift_level" => config.drift_level = parse_num("drift_level", value)?,
                _ => return Err(unknown("min_instances, warning_level, drift_level")),
            },
            DetectorSpec::Eddm { config } => match key {
                "alpha" => config.alpha = parse_num("alpha", value)?,
                "beta" => config.beta = parse_num("beta", value)?,
                "min_errors" => config.min_errors = parse_num("min_errors", value)?,
                _ => return Err(unknown("alpha, beta, min_errors")),
            },
            DetectorSpec::Stepd { config } => match key {
                "window_size" => config.window_size = parse_num("window_size", value)?,
                "alpha_drift" => config.alpha_drift = parse_num("alpha_drift", value)?,
                "alpha_warning" => config.alpha_warning = parse_num("alpha_warning", value)?,
                _ => return Err(unknown("window_size, alpha_drift, alpha_warning")),
            },
            DetectorSpec::Ecdd { config } => match key {
                "lambda" => config.lambda = parse_num("lambda", value)?,
                "arl0" => config.arl0 = parse_num("arl0", value)?,
                "min_instances" => config.min_instances = parse_num("min_instances", value)?,
                "warning_fraction" => {
                    config.warning_fraction = parse_num("warning_fraction", value)?;
                }
                _ => return Err(unknown("lambda, arl0, min_instances, warning_fraction")),
            },
            DetectorSpec::PageHinkley { config } => match key {
                "min_instances" => config.min_instances = parse_num("min_instances", value)?,
                "delta" => config.delta = parse_num("delta", value)?,
                "lambda" => config.lambda = parse_num("lambda", value)?,
                "alpha" => config.alpha = parse_num("alpha", value)?,
                "warning_fraction" => {
                    config.warning_fraction = parse_num("warning_fraction", value)?;
                }
                _ => {
                    return Err(unknown(
                        "min_instances, delta, lambda, alpha, warning_fraction",
                    ))
                }
            },
            DetectorSpec::Kswin { config } => match key {
                "window_size" => config.window_size = parse_num("window_size", value)?,
                "stat_size" => config.stat_size = parse_num("stat_size", value)?,
                "alpha" => config.alpha = parse_num("alpha", value)?,
                _ => return Err(unknown("window_size, stat_size, alpha")),
            },
            DetectorSpec::Cascade { config } => match key {
                "guard" => *config.guard = parse_nested("guard", value)?,
                "confirm" => *config.confirm = parse_nested("confirm", value)?,
                "replay" => config.replay = parse_num("replay", value)?,
                "cooldown" => config.cooldown = parse_num("cooldown", value)?,
                _ => return Err(unknown("guard, confirm, replay, cooldown")),
            },
            DetectorSpec::Ensemble { config } => match key {
                "vote" => config.vote = parse_num("vote", value)?,
                "horizon" => config.horizon = parse_num("horizon", value)?,
                "members" => {
                    let mut members = Vec::new();
                    for part in split_top_level(strip_brackets(value), '|')? {
                        let part = part.trim();
                        if part.is_empty() {
                            return Err(FieldError::Invalid(invalid(
                                "members",
                                "has an empty member entry",
                            )));
                        }
                        members.push(parse_nested("members", part)?);
                    }
                    config.members = members;
                }
                _ => return Err(unknown("vote, horizon, members")),
            },
        }
        Ok(())
    }
}

impl serde::Serialize for DetectorSpec {
    /// Serializes as the canonical spec string (see the module docs): one
    /// grammar for CLIs, config files and snapshot payloads.
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for DetectorSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(s) => s
                .parse()
                .map_err(|e: CoreError| serde::DeError::new(e.to_string())),
            other => Err(serde::DeError::new(format!(
                "expected a detector spec string, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_core::DriftStatus;

    #[test]
    fn defaults_for_every_id() {
        let all = DetectorSpec::all_defaults();
        assert_eq!(all.len(), 8);
        for (spec, id) in all.iter().zip(DETECTOR_IDS) {
            assert_eq!(spec.id(), id);
            spec.validate().expect("defaults are valid");
        }
        assert!(DetectorSpec::default_for("no-such").is_err());
        // Page–Hinkley spellings.
        for alias in ["page_hinkley", "page-hinkley", "PageHinkley", "ph"] {
            assert_eq!(
                DetectorSpec::default_for(alias).unwrap().id(),
                "page_hinkley"
            );
        }
    }

    #[test]
    fn display_from_str_round_trips_defaults() {
        for spec in DetectorSpec::all_defaults() {
            let text = spec.to_string();
            let parsed: DetectorSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, spec, "{text}");
        }
    }

    #[test]
    fn from_str_overrides_and_defaults() {
        let spec: DetectorSpec = "adwin:delta=0.01,clock=16".parse().unwrap();
        let DetectorSpec::Adwin { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.delta, 0.01);
        assert_eq!(config.clock, 16);
        // Unspecified keys keep the defaults.
        assert_eq!(config.min_window_len, AdwinConfig::default().min_window_len);

        let spec: DetectorSpec = "optwin:rho=0.1,w_max=500,direction=both,warning_delta=none"
            .parse()
            .unwrap();
        let DetectorSpec::Optwin { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.rho, 0.1);
        assert_eq!(config.w_max, 500);
        assert_eq!(config.direction, DriftDirection::Both);
        assert_eq!(config.warning_delta, None);

        // Whitespace tolerance.
        let spec: DetectorSpec = "  kswin : stat_size = 10 , window_size = 50  "
            .parse()
            .unwrap();
        assert_eq!(spec.id(), "kswin");
    }

    #[test]
    fn from_str_rejects_malformed_input() {
        for bad in [
            "",
            "frobnicate",
            "adwin:",
            "adwin:delta",
            "adwin:delta=abc",
            "adwin:unknown_key=1",
            "adwin:delta=2.0",      // out of range
            "kswin:window_size=10", // <= 2 * stat_size
            "optwin:direction=sideways",
            "ddm:warning_level=3,drift_level=2",
            // Non-finite parameters must be rejected: a NaN/inf threshold
            // builds a detector whose every comparison is silently false.
            "page_hinkley:delta=nan",
            "page_hinkley:lambda=inf",
            "ddm:drift_level=inf",
            "ecdd:arl0=inf",
        ] {
            let err = bad.parse::<DetectorSpec>().unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidConfig { .. }),
                "{bad}: {err}"
            );
        }
        // The unknown-detector error lists the valid ids.
        let err = "frobnicate".parse::<DetectorSpec>().unwrap_err();
        assert!(err.to_string().contains("adwin"), "{err}");
        assert!(err.to_string().contains("page_hinkley"), "{err}");
    }

    #[test]
    fn parse_lenient_skips_unknown_keys_with_warnings() {
        // Unknown keys become warnings; known keys still apply.
        let (spec, warnings) =
            DetectorSpec::parse_lenient("adwin:delta=0.01,future_knob=7,clock=16,vendor.tag=x")
                .unwrap();
        let DetectorSpec::Adwin { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.delta, 0.01);
        assert_eq!(config.clock, 16);
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].contains("future_knob"), "{warnings:?}");
        assert!(warnings[0].contains("valid keys"), "{warnings:?}");
        assert!(warnings[1].contains("vendor.tag"), "{warnings:?}");

        // A fully known spec parses warning-free and identically to FromStr.
        let (lenient, warnings) = DetectorSpec::parse_lenient("kswin:stat_size=10").unwrap();
        assert!(warnings.is_empty());
        assert_eq!(lenient, "kswin:stat_size=10".parse().unwrap());

        // Everything else stays strict: ids, pair shape, values, ranges.
        for bad in [
            "frobnicate",
            "adwin:delta",     // malformed pair
            "adwin:delta=abc", // unparsable value
            "adwin:delta=2.0", // out of range
            "page_hinkley:delta=nan",
        ] {
            assert!(DetectorSpec::parse_lenient(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn build_produces_matching_detectors() {
        for spec in DetectorSpec::all_defaults() {
            let mut detector = spec.build().expect("defaults build");
            assert_eq!(detector.name(), spec.detector_name());
            assert_eq!(
                !detector.supports_real_valued_input(),
                spec.binary_only(),
                "{}",
                spec.id()
            );
            assert_eq!(detector.add_element(0.0), DriftStatus::Stable);
            assert_eq!(detector.elements_seen(), 1);
        }
        // build() reports errors instead of panicking.
        let bad = DetectorSpec::Adwin {
            config: AdwinConfig {
                delta: 0.0,
                ..AdwinConfig::default()
            },
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn built_optwins_share_cut_tables() {
        let spec: DetectorSpec = "optwin:w_max=300".parse().unwrap();
        // Both builds intern the same table in the registry; equality of the
        // underlying Arc is checked through the concrete type.
        let config = match &spec {
            DetectorSpec::Optwin { config } => config.clone(),
            _ => unreachable!(),
        };
        let _ = spec.build().unwrap();
        let a = Optwin::with_shared_table(config.clone()).unwrap();
        let b = Optwin::with_shared_table(config).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a.cut_table(), &b.cut_table()));
    }

    #[test]
    fn serde_round_trips() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in DetectorSpec::all_defaults() {
            let value = spec.to_value();
            assert!(matches!(value, serde::Value::Str(_)));
            let back = DetectorSpec::from_value(&value).unwrap();
            assert_eq!(back, spec);
        }
        assert!(DetectorSpec::from_value(&serde::Value::Int(3)).is_err());
        assert!(DetectorSpec::from_value(&serde::Value::Str("bogus".into())).is_err());
    }

    #[test]
    fn grammar_help_lists_every_id() {
        let help = DetectorSpec::grammar_help();
        for id in DETECTOR_IDS {
            assert!(help.contains(id), "missing {id} in:\n{help}");
        }
        for id in ["cascade:", "ensemble:"] {
            assert!(help.contains(id), "missing {id} in:\n{help}");
        }
    }

    #[test]
    fn composite_specs_parse_the_documented_forms() {
        // The two literal forms from the grammar documentation.
        let spec: DetectorSpec = "cascade:guard=ddm,confirm=optwin:delta=0.01"
            .parse()
            .unwrap();
        let DetectorSpec::Cascade { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.guard.id(), "ddm");
        let DetectorSpec::Optwin { config: optwin } = config.confirm.as_ref() else {
            panic!("confirm must be optwin")
        };
        assert_eq!(optwin.delta, 0.01);
        // Unspecified composite keys keep the defaults.
        assert_eq!(config.replay, 256);
        assert_eq!(config.cooldown, 256);

        let spec: DetectorSpec = "ensemble:vote=2,members=[ddm|ecdd|ph]".parse().unwrap();
        let DetectorSpec::Ensemble { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.vote, 2);
        let ids: Vec<_> = config.members.iter().map(DetectorSpec::id).collect();
        assert_eq!(ids, ["ddm", "ecdd", "page_hinkley"]);

        // Bracketed nested values and nested overrides.
        let spec: DetectorSpec =
            "cascade:guard=[ddm:min_instances=50],confirm=[kswin:stat_size=40,window_size=200],\
             replay=64,cooldown=32"
                .parse()
                .unwrap();
        let DetectorSpec::Cascade { config } = &spec else {
            panic!("wrong variant")
        };
        let DetectorSpec::Ddm { config: ddm } = config.guard.as_ref() else {
            panic!("guard must be ddm")
        };
        assert_eq!(ddm.min_instances, 50);
        assert_eq!((config.replay, config.cooldown), (64, 32));

        // A cascade inside an ensemble (the deepest supported nesting).
        let spec: DetectorSpec = "ensemble:vote=1,members=[cascade:guard=ddm,confirm=optwin|ecdd]"
            .parse()
            .unwrap();
        let DetectorSpec::Ensemble { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.members[0].id(), "cascade");
        assert_eq!(config.members[1].id(), "ecdd");
    }

    #[test]
    fn composite_display_round_trips_and_builds() {
        for text in [
            "cascade",
            "ensemble",
            "cascade:guard=ddm,confirm=optwin:delta=0.01",
            "ensemble:vote=2,members=[ddm|ecdd|ph]",
            "ensemble:vote=1,members=[cascade:guard=ddm,confirm=optwin:w_max=500|ecdd]",
        ] {
            let spec: DetectorSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            let echoed: DetectorSpec = spec.to_string().parse().unwrap();
            assert_eq!(echoed, spec, "{text} → {spec}");
            let mut detector = spec.build().unwrap();
            assert_eq!(detector.name(), spec.detector_name());
            assert_eq!(
                !detector.supports_real_valued_input(),
                spec.binary_only(),
                "{text}"
            );
            detector.add_element(0.0);
        }
        // Serde uses the same canonical string.
        use serde::{Deserialize as _, Serialize as _};
        let spec: DetectorSpec = "ensemble:vote=2,members=[ddm|ecdd|ph]".parse().unwrap();
        assert_eq!(DetectorSpec::from_value(&spec.to_value()).unwrap(), spec);
    }

    #[test]
    fn composite_specs_reject_malformed_input() {
        for bad in [
            "cascade:guard=frobnicate", // unknown nested id
            "cascade:replay=0",         // out-of-range composite knob
            "cascade:cooldown=0",
            "cascade:wake=now",                   // unknown composite key
            "ensemble:vote=0",                    // vote below 1
            "ensemble:vote=4",                    // vote above member count
            "ensemble:members=[]",                // empty member list
            "ensemble:members=[ddm|]",            // empty member entry
            "ensemble:members=[ddm",              // unbalanced bracket
            "ensemble:members=ddm]",              // unbalanced bracket
            "ensemble:members=[adwin:delta=2.0]", // nested value out of range
        ] {
            let err = bad.parse::<DetectorSpec>().unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidConfig { .. }),
                "{bad}: {err}"
            );
        }
        // The unknown-key error lists the composite keys.
        let err = "cascade:wake=now".parse::<DetectorSpec>().unwrap_err();
        assert!(err.to_string().contains("guard, confirm"), "{err}");
    }

    #[test]
    fn composite_nesting_depth_is_capped_at_two() {
        // Depth 2 (cascade inside ensemble) is the maximum accepted...
        let ok: DetectorSpec = "ensemble:vote=1,members=[cascade:guard=ddm,confirm=optwin|ecdd]"
            .parse()
            .unwrap();
        ok.validate().unwrap();
        // ...depth 3 is rejected by validate() during parsing.
        let bad = "ensemble:vote=1,\
                   members=[cascade:guard=[cascade:guard=ddm,confirm=eddm],confirm=optwin]";
        let err = bad.parse::<DetectorSpec>().unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
        // Same via the programmatic API.
        let deep = DetectorSpec::Ensemble {
            config: EnsembleConfig {
                vote: 1,
                members: vec![DetectorSpec::Cascade {
                    config: CascadeConfig {
                        guard: Box::new("cascade:guard=ddm,confirm=eddm".parse().unwrap()),
                        ..CascadeConfig::default()
                    },
                }],
                ..EnsembleConfig::default()
            },
        };
        assert!(deep.validate().is_err());
    }

    mod round_trip_properties {
        use super::*;
        use proptest::prelude::*;

        /// A strategy producing arbitrary *valid* specs across all eight
        /// variants, exercising every parameter field.
        fn arb_spec() -> impl Strategy<Value = DetectorSpec> {
            prop_oneof![
                (0.5f64..0.999).prop_map(|delta| DetectorSpec::Optwin {
                    config: OptwinConfig {
                        delta,
                        rho: 0.1 + (delta - 0.5) * 1.7,
                        w_min: 5 + (delta * 40.0) as usize,
                        w_max: 100 + (delta * 10_000.0) as usize,
                        eta: 1e-6 + delta * 1e-4,
                        direction: if delta > 0.75 {
                            DriftDirection::Both
                        } else {
                            DriftDirection::DegradationOnly
                        },
                        warning_delta: if delta > 0.6 { Some(delta * 0.9) } else { None },
                    },
                }),
                (1e-4f64..0.5).prop_map(|delta| DetectorSpec::Adwin {
                    config: AdwinConfig {
                        delta,
                        clock: 1 + (delta * 100.0) as u32,
                        min_window_len: 4 + (delta * 50.0) as usize,
                        min_sub_window_len: 1 + (delta * 20.0) as usize,
                    },
                }),
                (0.1f64..3.0).prop_map(|w| DetectorSpec::Ddm {
                    config: DdmConfig {
                        min_instances: 10 + (w * 40.0) as u64,
                        warning_level: w,
                        drift_level: w + 0.5,
                    },
                }),
                (0.01f64..0.9).prop_map(|beta| DetectorSpec::Eddm {
                    config: EddmConfig {
                        alpha: beta + 0.05,
                        beta,
                        min_errors: 5 + (beta * 100.0) as u64,
                    },
                }),
                (1e-4f64..0.04).prop_map(|a| DetectorSpec::Stepd {
                    config: StepdConfig {
                        window_size: 10 + (a * 10_000.0) as usize,
                        alpha_drift: a,
                        alpha_warning: a * 10.0,
                    },
                }),
                (0.05f64..1.0).prop_map(|lambda| DetectorSpec::Ecdd {
                    config: EcddConfig {
                        lambda,
                        arl0: 2.0 + lambda * 1_000.0,
                        min_instances: (lambda * 100.0) as u64,
                        warning_fraction: lambda,
                    },
                }),
                (1e-3f64..0.5).prop_map(|delta| DetectorSpec::PageHinkley {
                    config: PageHinkleyConfig {
                        min_instances: 5 + (delta * 100.0) as u64,
                        delta,
                        lambda: 1.0 + delta * 100.0,
                        alpha: 0.5 + delta,
                        warning_fraction: delta + 0.25,
                    },
                }),
                (1e-5f64..0.01).prop_map(|alpha| DetectorSpec::Kswin {
                    config: KswinConfig {
                        window_size: 101 + (alpha * 1e5) as usize,
                        stat_size: 10 + (alpha * 1e4) as usize,
                        alpha,
                    },
                }),
                // Composites: the shim has no tuple strategies, so one float
                // encodes the guard/confirmer (or member) choices.
                (0.0f64..1.0).prop_map(|x| {
                    let n = (x * 64.0) as usize;
                    DetectorSpec::Cascade {
                        config: CascadeConfig {
                            guard: Box::new(
                                DetectorSpec::default_for(DETECTOR_IDS[n % 8]).unwrap(),
                            ),
                            confirm: Box::new(
                                DetectorSpec::default_for(DETECTOR_IDS[(n / 8) % 8]).unwrap(),
                            ),
                            replay: 1 + (x * 1_000.0) as usize,
                            cooldown: 1 + (x * 500.0) as u32,
                        },
                    }
                }),
                (0.0f64..1.0).prop_map(|x| {
                    let n = (x * 512.0) as usize;
                    let mut members = vec![
                        DetectorSpec::default_for(DETECTOR_IDS[n % 8]).unwrap(),
                        DetectorSpec::default_for(DETECTOR_IDS[(n / 8) % 8]).unwrap(),
                    ];
                    if n.is_multiple_of(2) {
                        // Exercise a cascade nested inside the ensemble.
                        members.push(DetectorSpec::Cascade {
                            config: CascadeConfig {
                                guard: Box::new(
                                    DetectorSpec::default_for(DETECTOR_IDS[(n / 3) % 8]).unwrap(),
                                ),
                                replay: 1 + n,
                                ..CascadeConfig::default()
                            },
                        });
                    }
                    DetectorSpec::Ensemble {
                        config: EnsembleConfig {
                            vote: 1 + (n / 64) % 2,
                            members,
                            horizon: 1 + (n % 300) as u32,
                        },
                    }
                }),
            ]
        }

        proptest! {
            /// `Display` → `FromStr` and serde both reproduce the exact spec
            /// for every variant with arbitrary in-range parameters.
            #[test]
            fn display_and_serde_round_trip(spec in arb_spec()) {
                prop_assert!(spec.validate().is_ok(), "{spec}");
                let parsed: DetectorSpec = spec
                    .to_string()
                    .parse()
                    .map_err(|e: CoreError| TestCaseError::fail(format!("{spec}: {e}")))?;
                prop_assert_eq!(&parsed, &spec);

                use serde::{Deserialize as _, Serialize as _};
                let back = DetectorSpec::from_value(&spec.to_value())
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(&back, &spec);
            }
        }
    }
}
