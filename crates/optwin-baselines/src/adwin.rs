//! ADWIN — ADaptive WINdowing (Bifet & Gavaldà, 2007).
//!
//! ADWIN maintains a variable-length window `W` of the most recent
//! observations compressed into an *exponential histogram*: a list of bucket
//! rows where row `r` holds buckets that each summarise `2^r` elements (only
//! their count, sum and internal variance are stored, never the raw values).
//! After each insertion the detector scans the possible cut points between
//! buckets, from oldest to newest, and checks whether the two resulting
//! sub-windows have means that differ by more than `ε_cut`. If so, the oldest
//! bucket is dropped (repeatedly) and a drift is reported.
//!
//! This implementation follows the MOA/River version used by the paper:
//! `ε_cut` uses the normal-approximation bound
//!
//! ```text
//! ε_cut = sqrt( (2/m) · σ²_W · ln(2/δ') ) + (2/(3m)) · ln(2/δ'),
//!     m  = 1 / (1/n₀ + 1/n₁),       δ' = δ / ln(n)
//! ```
//!
//! and the window is only inspected every `clock` insertions (default 32),
//! giving O(log |W|) amortized work per element.

use optwin_core::snapshot::{check_version, field, float_field, invalid};
use optwin_core::{BatchOutcome, CoreError, DriftDetector, DriftStatus};

/// Maximum number of buckets per row before two are merged into the next row
/// (the `M` parameter of the paper; MOA uses 5).
const MAX_BUCKETS_PER_ROW: usize = 5;

/// Serialization format version of [`Adwin`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Adwin`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdwinConfig {
    /// Confidence parameter δ ∈ (0, 1); smaller values make the detector more
    /// conservative. MOA's default is `0.002`.
    pub delta: f64,
    /// Number of insertions between change checks (MOA default 32).
    pub clock: u32,
    /// Minimum window length before any cut is considered.
    pub min_window_len: usize,
    /// Minimum sub-window length on each side of a candidate cut.
    pub min_sub_window_len: usize,
}

impl Default for AdwinConfig {
    fn default() -> Self {
        Self {
            delta: 0.002,
            clock: 32,
            min_window_len: 10,
            min_sub_window_len: 5,
        }
    }
}

/// One bucket of the exponential histogram: `count` elements summarised by
/// their sum and the internal variance contribution.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    count: u64,
    sum: f64,
    /// Sum of squared deviations from the bucket mean (i.e. `n · Var`).
    variance: f64,
}

impl Bucket {
    fn single(value: f64) -> Self {
        Self {
            count: 1,
            sum: value,
            variance: 0.0,
        }
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges two buckets (parallel-variance formula).
    fn merge(a: &Bucket, b: &Bucket) -> Bucket {
        if a.count == 0 {
            return *b;
        }
        if b.count == 0 {
            return *a;
        }
        let n1 = a.count as f64;
        let n2 = b.count as f64;
        let delta = b.mean() - a.mean();
        Bucket {
            count: a.count + b.count,
            sum: a.sum + b.sum,
            variance: a.variance + b.variance + delta * delta * n1 * n2 / (n1 + n2),
        }
    }
}

/// The ADWIN drift detector.
#[derive(Debug, Clone)]
pub struct Adwin {
    config: AdwinConfig,
    /// `rows[r]` holds the buckets of capacity `2^r`, newest first.
    rows: Vec<Vec<Bucket>>,
    /// Total element count in the window.
    total_count: u64,
    /// Total sum over the window.
    total_sum: f64,
    /// Total `n · Var` over the window.
    total_variance: f64,
    elements_since_check: u32,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl Adwin {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)` or `clock` is zero.
    #[must_use]
    pub fn new(config: AdwinConfig) -> Self {
        assert!(
            config.delta > 0.0 && config.delta < 1.0,
            "ADWIN delta must be in (0, 1), got {}",
            config.delta
        );
        assert!(config.clock > 0, "ADWIN clock must be positive");
        Self {
            config,
            rows: vec![Vec::new()],
            total_count: 0,
            total_sum: 0.0,
            total_variance: 0.0,
            elements_since_check: 0,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with MOA's default parameters (δ = 0.002).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(AdwinConfig::default())
    }

    /// Creates a detector with a custom confidence δ.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn with_delta(delta: f64) -> Self {
        Self::new(AdwinConfig {
            delta,
            ..AdwinConfig::default()
        })
    }

    /// Current window length.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.total_count
    }

    /// Mean of the current window.
    #[must_use]
    pub fn window_mean(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            self.total_sum / self.total_count as f64
        }
    }

    /// Variance (population) of the current window.
    #[must_use]
    pub fn window_variance(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            (self.total_variance / self.total_count as f64).max(0.0)
        }
    }

    /// Inserts a single-element bucket and compresses rows as needed.
    fn insert(&mut self, value: f64) {
        // New elements enter at the front of row 0.
        self.rows[0].insert(0, Bucket::single(value));
        self.total_count += 1;
        // Update total variance incrementally (Welford-style on the window
        // aggregate): contribution of the new point relative to the old mean.
        if self.total_count > 1 {
            let old_mean = (self.total_sum) / (self.total_count - 1) as f64;
            let delta = value - old_mean;
            self.total_variance +=
                delta * delta * (self.total_count - 1) as f64 / self.total_count as f64;
        }
        self.total_sum += value;

        // Compress: whenever a row exceeds MAX_BUCKETS_PER_ROW buckets, merge
        // its two oldest buckets into one bucket of the next row.
        let mut row = 0;
        loop {
            if self.rows[row].len() <= MAX_BUCKETS_PER_ROW {
                break;
            }
            if row + 1 == self.rows.len() {
                self.rows.push(Vec::new());
            }
            let oldest = self.rows[row].pop().expect("row length checked above");
            let second_oldest = self.rows[row].pop().expect("row length checked above");
            let merged = Bucket::merge(&second_oldest, &oldest);
            self.rows[row + 1].insert(0, merged);
            row += 1;
        }
    }

    /// Removes the oldest bucket from the window.
    fn drop_oldest_bucket(&mut self) {
        // The oldest bucket lives at the back of the highest non-empty row.
        let row = match self.rows.iter().rposition(|r| !r.is_empty()) {
            Some(r) => r,
            None => return,
        };
        let bucket = self.rows[row].pop().expect("row is non-empty");
        let n = bucket.count as f64;
        if bucket.count >= self.total_count {
            self.total_count = 0;
            self.total_sum = 0.0;
            self.total_variance = 0.0;
            return;
        }
        // Remove the bucket's contribution from the window aggregates.
        let remaining = self.total_count - bucket.count;
        let window_mean = self.window_mean();
        let delta = bucket.mean() - window_mean;
        self.total_variance -=
            bucket.variance + delta * delta * n * remaining as f64 / self.total_count as f64;
        self.total_variance = self.total_variance.max(0.0);
        self.total_sum -= bucket.sum;
        self.total_count = remaining;
    }

    /// Scans the cut points and returns `true` if a cut (drift) was found,
    /// shrinking the window accordingly.
    fn detect_and_shrink(&mut self) -> bool {
        if self.total_count < self.config.min_window_len as u64 {
            return false;
        }
        let mut change = false;
        let mut reduced = true;
        // Repeat until no further cut is found (ADWIN may shrink repeatedly).
        while reduced {
            reduced = false;
            let n = self.total_count as f64;
            if n < self.config.min_window_len as f64 {
                break;
            }
            let delta_prime = self.config.delta / n.ln().max(1.0);
            let ln_term = (2.0 / delta_prime).ln();
            let total_var = self.window_variance();

            // Walk buckets from oldest to newest accumulating the "old"
            // sub-window W0; the complement is W1.
            let mut n0 = 0.0f64;
            let mut sum0 = 0.0f64;
            let mut found_cut = false;
            'outer: for row in (0..self.rows.len()).rev() {
                for bucket in self.rows[row].iter().rev() {
                    n0 += bucket.count as f64;
                    sum0 += bucket.sum;
                    let n1 = self.total_count as f64 - n0;
                    if n0 < self.config.min_sub_window_len as f64 {
                        continue;
                    }
                    if n1 < self.config.min_sub_window_len as f64 {
                        break 'outer;
                    }
                    let mean0 = sum0 / n0;
                    let mean1 = (self.total_sum - sum0) / n1;
                    let m = 1.0 / (1.0 / n0 + 1.0 / n1);
                    let eps_cut =
                        (2.0 / m * total_var * ln_term).sqrt() + 2.0 / (3.0 * m) * ln_term;
                    if (mean0 - mean1).abs() > eps_cut {
                        found_cut = true;
                        break 'outer;
                    }
                }
            }
            if found_cut {
                self.drop_oldest_bucket();
                change = true;
                reduced = true;
            }
        }
        change
    }
}

impl DriftDetector for Adwin {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        self.insert(value);
        self.elements_since_check += 1;

        let mut status = DriftStatus::Stable;
        if self.elements_since_check >= self.config.clock {
            self.elements_since_check = 0;
            if self.detect_and_shrink() {
                self.drifts_detected += 1;
                status = DriftStatus::Drift;
            }
        }
        self.last_status = status;
        status
    }

    /// Native batch path exploiting ADWIN's `clock` parameter: between change
    /// checks every element is a plain histogram insertion with a guaranteed
    /// [`DriftStatus::Stable`] verdict, so whole runs of up to `clock`
    /// elements are inserted in a tight loop and only the clock-boundary
    /// element pays for the cut scan. Decisions are identical to the
    /// element-wise fold by construction.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let mut outcome = BatchOutcome::with_len(values.len());
        let clock = self.config.clock;
        let mut i = 0usize;
        while i < values.len() {
            // Elements until the next check are Stable by definition.
            let until_check = (clock - self.elements_since_check) as usize;
            let quiet = until_check.saturating_sub(1).min(values.len() - i);
            for &value in &values[i..i + quiet] {
                self.elements_seen += 1;
                self.insert(value);
            }
            self.elements_since_check += quiet as u32;
            if quiet > 0 {
                self.last_status = DriftStatus::Stable;
                outcome.record(i + quiet - 1, DriftStatus::Stable);
            }
            i += quiet;
            // The next element (if any) lands on the clock boundary and runs
            // the full scan through the scalar path.
            if i < values.len() {
                outcome.record(i, self.add_element(values[i]));
                i += 1;
            }
        }
        outcome
    }

    fn reset(&mut self) {
        let config = self.config.clone();
        let elements_seen = self.elements_seen;
        let drifts = self.drifts_detected;
        *self = Self::new(config);
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts;
    }

    fn name(&self) -> &'static str {
        "ADWIN"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        true
    }

    /// Struct size plus the exponential histogram's heap: the row spine and
    /// every row's bucket storage, counted at capacity.
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self)
            + self.rows.capacity() * std::mem::size_of::<Vec<Bucket>>()
            + self
                .rows
                .iter()
                .map(|row| row.capacity() * std::mem::size_of::<Bucket>())
                .sum::<usize>()
    }

    /// Serializes the exponential histogram verbatim — every bucket's
    /// `(count, sum, variance)` triple per row — plus the raw window
    /// aggregates and counters. The aggregates are *not* recomputed from the
    /// buckets on restore: `total_variance` carries the rounding history of
    /// every incremental update, and bit-exact resumption requires restoring
    /// exactly that value.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// [`Adwin::snapshot_state`] with an explicit layout for the bucket
    /// rows. The JSON layout keeps the historical nested
    /// `[[count, sum, variance], ..]` arrays; the binary layout stores the
    /// same buckets **columnar** — per-row lengths plus one blob each for
    /// the flattened counts (varints), sums and variances — so the integral
    /// columns compress far below their JSON forms.
    fn snapshot_state_encoded(
        &self,
        encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use optwin_core::snapshot::{f64_seq_value, u64_seq_value};
        use serde::Serialize as _;
        let rows = match encoding {
            optwin_core::SnapshotEncoding::Json => serde::Value::Array(
                self.rows
                    .iter()
                    .map(|row| {
                        serde::Value::Array(
                            row.iter()
                                .map(|b| {
                                    serde::Value::Array(vec![
                                        serde::Value::UInt(b.count),
                                        serde::Value::Float(b.sum),
                                        serde::Value::Float(b.variance),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
            optwin_core::SnapshotEncoding::Binary => {
                let lens: Vec<u64> = self.rows.iter().map(|row| row.len() as u64).collect();
                let buckets = self.rows.iter().flatten();
                let counts: Vec<u64> = buckets.clone().map(|b| b.count).collect();
                let sums: Vec<f64> = buckets.clone().map(|b| b.sum).collect();
                let variances: Vec<f64> = buckets.map(|b| b.variance).collect();
                serde::Value::Object(vec![
                    (
                        "row_lens".to_string(),
                        u64_seq_value(optwin_core::SnapshotEncoding::Binary, &lens),
                    ),
                    (
                        "counts".to_string(),
                        u64_seq_value(optwin_core::SnapshotEncoding::Binary, &counts),
                    ),
                    (
                        "sums".to_string(),
                        f64_seq_value(optwin_core::SnapshotEncoding::Binary, &sums),
                    ),
                    (
                        "variances".to_string(),
                        f64_seq_value(optwin_core::SnapshotEncoding::Binary, &variances),
                    ),
                ])
            }
        };
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            ("rows".to_string(), rows),
            (
                "total_count".to_string(),
                serde::Value::UInt(self.total_count),
            ),
            ("total_sum".to_string(), serde::Value::Float(self.total_sum)),
            (
                "total_variance".to_string(),
                serde::Value::Float(self.total_variance),
            ),
            (
                "elements_since_check".to_string(),
                serde::Value::UInt(u64::from(self.elements_since_check)),
            ),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "ADWIN")?;

        let rows_value = state
            .get("rows")
            .ok_or_else(|| invalid("missing field `rows`"))?;
        let (rows, bucket_total) = match rows_value {
            serde::Value::Array(row_values) => rows_from_nested(row_values)?,
            serde::Value::Object(_) => rows_from_columnar(rows_value)?,
            _ => {
                return Err(invalid(
                    "`rows` must be a nested bucket array or a columnar blob object",
                ))
            }
        };

        let total_count: u64 = field(state, "total_count")?;
        if total_count != bucket_total {
            return Err(invalid(format!(
                "total_count ({total_count}) does not match the buckets ({bucket_total})"
            )));
        }
        let total_sum = float_field(state, "total_sum")?;
        let total_variance = float_field(state, "total_variance")?;
        let since_check: u64 = field(state, "elements_since_check")?;
        if since_check >= u64::from(self.config.clock) {
            return Err(invalid(format!(
                "elements_since_check ({since_check}) must be below the clock ({})",
                self.config.clock
            )));
        }
        let last_status: DriftStatus = field(state, "last_status")?;
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;

        self.rows = rows;
        self.total_count = total_count;
        self.total_sum = total_sum;
        self.total_variance = total_variance;
        self.elements_since_check = since_check as u32;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

/// Shared bucket validation for both snapshot layouts: positive count and
/// an overflow-checked running total. The float moments are accepted
/// verbatim — a bucket fed `±1e300` legitimately saturates its sum or
/// variance to `±inf`/NaN, and restore must round-trip every state its
/// paired snapshot can emit.
fn validated_bucket(
    count: u64,
    sum: f64,
    variance: f64,
    bucket_total: &mut u64,
    at: impl Fn() -> String,
) -> Result<Bucket, CoreError> {
    if count == 0 {
        return Err(invalid(format!("{} has zero count", at())));
    }
    *bucket_total = bucket_total
        .checked_add(count)
        .ok_or_else(|| invalid(format!("bucket counts overflow at {}", at())))?;
    Ok(Bucket {
        count,
        sum,
        variance,
    })
}

/// Parses the historical JSON layout of `rows`: an array of rows, each an
/// array of `[count, sum, variance]` triples.
fn rows_from_nested(row_values: &[serde::Value]) -> Result<(Vec<Vec<Bucket>>, u64), CoreError> {
    if row_values.is_empty() {
        return Err(invalid("`rows` must contain at least one row"));
    }
    let mut rows: Vec<Vec<Bucket>> = Vec::with_capacity(row_values.len());
    let mut bucket_total: u64 = 0;
    for (r, row_value) in row_values.iter().enumerate() {
        let serde::Value::Array(bucket_values) = row_value else {
            return Err(invalid(format!("`rows[{r}]` must be an array")));
        };
        if bucket_values.len() > MAX_BUCKETS_PER_ROW + 1 {
            return Err(invalid(format!(
                "`rows[{r}]` has {} buckets (limit {})",
                bucket_values.len(),
                MAX_BUCKETS_PER_ROW + 1
            )));
        }
        let mut row = Vec::with_capacity(bucket_values.len());
        for (k, bucket_value) in bucket_values.iter().enumerate() {
            let serde::Value::Array(parts) = bucket_value else {
                return Err(invalid(format!("`rows[{r}][{k}]` must be an array")));
            };
            if parts.len() != 3 {
                return Err(invalid(format!(
                    "`rows[{r}][{k}]` must have 3 elements, got {}",
                    parts.len()
                )));
            }
            let count = <u64 as serde::Deserialize>::from_value(&parts[0])
                .map_err(|e| invalid(format!("`rows[{r}][{k}]` count: {e}")))?;
            let sum = <f64 as serde::Deserialize>::from_value(&parts[1])
                .map_err(|e| invalid(format!("`rows[{r}][{k}]` sum: {e}")))?;
            let variance = <f64 as serde::Deserialize>::from_value(&parts[2])
                .map_err(|e| invalid(format!("`rows[{r}][{k}]` variance: {e}")))?;
            row.push(validated_bucket(
                count,
                sum,
                variance,
                &mut bucket_total,
                || format!("`rows[{r}][{k}]`"),
            )?);
        }
        rows.push(row);
    }
    Ok((rows, bucket_total))
}

/// Parses the columnar binary layout of `rows` (wire format v4): per-row
/// lengths plus flattened `counts` / `sums` / `variances` blobs, all columns
/// required to agree on the bucket count.
fn rows_from_columnar(value: &serde::Value) -> Result<(Vec<Vec<Bucket>>, u64), CoreError> {
    use optwin_core::snapshot::{f64_seq_field, u64_seq_field};
    let lens = u64_seq_field(value, "row_lens")?;
    let counts = u64_seq_field(value, "counts")?;
    let sums = f64_seq_field(value, "sums")?;
    let variances = f64_seq_field(value, "variances")?;
    if lens.is_empty() {
        return Err(invalid("`rows.row_lens` must contain at least one row"));
    }
    let total: u64 = lens.iter().try_fold(0u64, |acc, &len| {
        acc.checked_add(len)
            .ok_or_else(|| invalid("`rows.row_lens` overflows"))
    })?;
    if total != counts.len() as u64 || counts.len() != sums.len() || counts.len() != variances.len()
    {
        return Err(invalid(format!(
            "`rows` column lengths disagree: row_lens sum to {total}, counts {}, sums {}, \
             variances {}",
            counts.len(),
            sums.len(),
            variances.len()
        )));
    }
    let mut rows: Vec<Vec<Bucket>> = Vec::with_capacity(lens.len());
    let mut bucket_total: u64 = 0;
    let mut offset = 0usize;
    for (r, &len) in lens.iter().enumerate() {
        let len = usize::try_from(len)
            .map_err(|_| invalid(format!("`rows.row_lens[{r}]` out of range")))?;
        if len > MAX_BUCKETS_PER_ROW + 1 {
            return Err(invalid(format!(
                "`rows.row_lens[{r}]` is {len} buckets (limit {})",
                MAX_BUCKETS_PER_ROW + 1
            )));
        }
        let mut row = Vec::with_capacity(len);
        for k in 0..len {
            let i = offset + k;
            row.push(validated_bucket(
                counts[i],
                sums[i],
                variances[i],
                &mut bucket_total,
                || format!("`rows[{r}][{k}]`"),
            )?);
        }
        offset += len;
        rows.push(row);
    }
    Ok((rows, bucket_total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{bernoulli, jitter};

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn rejects_bad_delta() {
        let _ = Adwin::with_delta(0.0);
    }

    #[test]
    fn window_statistics_track_inputs() {
        let mut a = Adwin::with_defaults();
        for i in 0..1_000u64 {
            a.add_element(0.3 + 0.1 * jitter(i));
        }
        assert_eq!(a.elements_seen(), 1_000);
        assert!((a.window_mean() - 0.3).abs() < 0.02);
        assert!(a.window_variance() < 0.01);
        // The exponential histogram stores far fewer buckets than elements.
        let total_buckets: usize = a.rows.iter().map(Vec::len).sum();
        assert!(total_buckets < 80, "buckets = {total_buckets}");
    }

    #[test]
    fn stationary_stream_rarely_fires() {
        let mut a = Adwin::with_defaults();
        let mut drifts = 0;
        for i in 0..20_000u64 {
            if a.add_element(bernoulli(i, 0.2)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        // δ = 0.002 gives a very low false-positive rate.
        assert!(drifts <= 2, "too many false positives: {drifts}");
    }

    #[test]
    fn sudden_mean_shift_detected() {
        let mut a = Adwin::with_defaults();
        let mut detected_at = None;
        for i in 0..6_000u64 {
            let p = if i < 3_000 { 0.05 } else { 0.5 };
            if a.add_element(bernoulli(i, p)) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("ADWIN must detect a large mean shift");
        assert!(at >= 3_000, "false positive at {at}");
        assert!(at < 3_500, "delay too large: {}", at - 3_000);
        // The window shrank after the cut.
        assert!(a.window_len() < 3_500);
    }

    #[test]
    fn real_valued_shift_detected() {
        let mut a = Adwin::with_defaults();
        let mut detected = false;
        for i in 0..4_000u64 {
            let base = if i < 2_000 { 0.2 } else { 0.6 };
            let x = (base + 0.1 * jitter(i)).clamp(0.0, 1.0);
            if a.add_element(x) == DriftStatus::Drift {
                detected = true;
                assert!(i >= 2_000, "false positive at {i}");
                break;
            }
        }
        assert!(detected);
    }

    #[test]
    fn mean_preserving_variance_change_not_detected() {
        // The paper's argument for OPTWIN: ADWIN only looks at means, so a
        // pure variance change goes unnoticed.
        let mut a = Adwin::with_defaults();
        let mut drifts = 0;
        for i in 0..8_000u64 {
            let x = if i < 4_000 {
                0.5 + 0.05 * jitter(i)
            } else if i % 2 == 0 {
                0.0
            } else {
                1.0
            };
            if a.add_element(x) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        assert_eq!(
            drifts, 0,
            "ADWIN unexpectedly reacted to a variance-only change"
        );
    }

    #[test]
    fn reset_clears_window_keeps_counters() {
        let mut a = Adwin::with_defaults();
        for i in 0..500u64 {
            a.add_element(bernoulli(i, 0.3));
        }
        let seen = a.elements_seen();
        a.reset();
        assert_eq!(a.window_len(), 0);
        assert_eq!(a.elements_seen(), seen);
        assert_eq!(a.name(), "ADWIN");
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let p = match i {
                    0..=2_999 => 0.05,
                    3_000..=5_999 => 0.40,
                    _ => 0.75,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Adwin::with_defaults, &stream);
        // Also with a clock that never divides the chunk sizes evenly.
        crate::test_util::assert_batch_equivalence(
            || {
                Adwin::new(AdwinConfig {
                    clock: 7,
                    ..AdwinConfig::default()
                })
            },
            &stream[..3_000],
        );
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let p = match i {
                    0..=2_999 => 0.05,
                    3_000..=5_999 => 0.40,
                    _ => 0.75,
                };
                bernoulli(i, p)
            })
            .collect();
        // Cuts off the clock boundary, right after the first drift region,
        // and at the very start/end.
        crate::test_util::assert_snapshot_equivalence(
            Adwin::with_defaults,
            &stream,
            &[0, 13, 1_000, 3_200, 8_000],
        );
        // Also with a clock that never divides the cuts evenly.
        crate::test_util::assert_snapshot_equivalence(
            || {
                Adwin::new(AdwinConfig {
                    clock: 7,
                    ..AdwinConfig::default()
                })
            },
            &stream[..4_000],
            &[5, 3_001],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Adwin::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Adwin::with_defaults();
        for i in 0..200u64 {
            donor.add_element(bernoulli(i, 0.3));
        }
        let state = donor.snapshot_state().unwrap();

        // Tampered total_count no longer matches the buckets.
        let serde::Value::Object(mut fields) = state.clone() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "total_count" {
                *v = serde::Value::UInt(9_999);
            }
        }
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("total_count"), "{err}");

        // Overflowing bucket counts are rejected instead of wrapping (which
        // could forge a passing total_count check) or panicking in debug.
        let serde::Value::Object(mut fields) = state.clone() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "rows" {
                *v = serde::Value::Array(vec![serde::Value::Array(vec![
                    serde::Value::Array(vec![
                        serde::Value::UInt(u64::MAX),
                        serde::Value::Float(0.0),
                        serde::Value::Float(0.0),
                    ]),
                    serde::Value::Array(vec![
                        serde::Value::UInt(u64::MAX),
                        serde::Value::Float(0.0),
                        serde::Value::Float(0.0),
                    ]),
                ])]);
            }
        }
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");

        // A clock mismatch between snapshotter and restorer is rejected when
        // the stored phase is out of range for the restoring configuration.
        let mut fast_clock = Adwin::new(AdwinConfig {
            clock: 2,
            ..AdwinConfig::default()
        });
        let err = fast_clock.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("clock"), "{err}");

        // A failed restore leaves the detector untouched.
        let before = d.elements_seen();
        let serde::Value::Object(fields) = state else {
            panic!("snapshot must be an object")
        };
        let truncated: Vec<(String, serde::Value)> = fields
            .into_iter()
            .filter(|(k, _)| k != "drifts_detected")
            .collect();
        assert!(d.restore_state(&serde::Value::Object(truncated)).is_err());
        assert_eq!(d.elements_seen(), before);
    }

    #[test]
    fn binary_snapshot_is_columnar_and_validated() {
        let mut donor = Adwin::with_defaults();
        for i in 0..2_000u64 {
            donor.add_element(bernoulli(i, 0.3));
        }
        let state = donor
            .snapshot_state_encoded(optwin_core::SnapshotEncoding::Binary)
            .unwrap();
        // The bucket rows become a columnar object of blob strings.
        let rows = state.get("rows").expect("rows present");
        assert!(rows.as_object().is_some(), "columnar layout");
        for column in ["row_lens", "counts", "sums", "variances"] {
            assert!(
                matches!(rows.get(column), Some(serde::Value::Str(_))),
                "column `{column}` must be a blob string"
            );
        }

        // Disagreeing column lengths are rejected, naming the columns.
        let serde::Value::Object(mut fields) = state.clone() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "rows" {
                let serde::Value::Object(mut columns) = v.clone() else {
                    panic!("rows must be columnar")
                };
                for (name, column) in &mut columns {
                    if name == "sums" {
                        *column = optwin_core::snapshot::encode_f64_seq(&[1.0]);
                    }
                }
                *v = serde::Value::Object(columns);
            }
        }
        let mut d = Adwin::with_defaults();
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("column lengths disagree"), "{err}");

        // The intact columnar state restores bit-exactly (the shared
        // equivalence helper exercises decisions; spot-check the aggregates).
        let mut restored = Adwin::with_defaults();
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.elements_seen(), donor.elements_seen());
        assert_eq!(
            restored.window_mean().to_bits(),
            donor.window_mean().to_bits()
        );
        assert_eq!(
            restored.window_variance().to_bits(),
            donor.window_variance().to_bits()
        );
    }

    #[test]
    fn bucket_merge_preserves_moments() {
        let a = Bucket {
            count: 4,
            sum: 2.0,
            variance: 0.25,
        };
        let b = Bucket {
            count: 4,
            sum: 3.0,
            variance: 0.3,
        };
        let m = Bucket::merge(&a, &b);
        assert_eq!(m.count, 8);
        assert!((m.sum - 5.0).abs() < 1e-12);
        // Parallel-variance: v = va + vb + d²·n1·n2/(n1+n2), d = 0.75 − 0.5
        assert!((m.variance - (0.25 + 0.3 + 0.0625 * 2.0)).abs() < 1e-12);
        // Merging with an empty bucket is the identity.
        let empty = Bucket::default();
        let same = Bucket::merge(&a, &empty);
        assert_eq!(same.count, a.count);
    }
}
