//! # optwin-baselines — baseline concept-drift detectors
//!
//! Re-implementations of the drift detectors the OPTWIN paper compares
//! against (all of them originally available in the MOA framework), plus a
//! few extensions used for ablation studies:
//!
//! | Detector | Module | Input | Paper reference |
//! |----------|--------|-------|-----------------|
//! | ADWIN    | [`adwin`] | real-valued in `[0, 1]` | Bifet & Gavaldà, 2007 |
//! | DDM      | [`ddm`]   | binary | Gama et al., 2004 |
//! | EDDM     | [`eddm`]  | binary | Baena-García et al., 2006 |
//! | STEPD    | [`stepd`] | binary (accuracy) | Nishida & Yamauchi, 2007 |
//! | ECDD     | [`ecdd`]  | binary | Ross et al., 2012 |
//! | Page–Hinkley | [`page_hinkley`] | real-valued | extension |
//! | KSWIN    | [`kswin`] | real-valued | extension |
//!
//! Every detector implements [`optwin_core::DriftDetector`], so they are
//! interchangeable with OPTWIN throughout the evaluation harness.
//!
//! ```
//! use optwin_core::{DriftDetector, DriftStatus};
//! use optwin_baselines::{Adwin, Ddm};
//!
//! let mut adwin = Adwin::with_defaults();
//! let mut ddm = Ddm::with_defaults();
//! for i in 0..2_000u32 {
//!     let error = if i < 1_000 { 0.0 } else { f64::from(i % 2) };
//!     adwin.add_element(error);
//!     ddm.add_element(error);
//! }
//! assert!(adwin.drifts_detected() + ddm.drifts_detected() > 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adwin;
pub mod composite;
pub mod ddm;
pub mod ecdd;
pub mod eddm;
pub mod kswin;
pub mod page_hinkley;
pub mod spec;
pub mod stepd;

pub use adwin::{Adwin, AdwinConfig};
pub use composite::{Cascade, CascadeConfig, Ensemble, EnsembleConfig};
pub use ddm::{Ddm, DdmConfig};
pub use ecdd::{Ecdd, EcddConfig};
pub use eddm::{Eddm, EddmConfig};
pub use kswin::{Kswin, KswinConfig};
pub use page_hinkley::{PageHinkley, PageHinkleyConfig};
pub use spec::{DetectorSpec, DETECTOR_IDS};
pub use stepd::{Stepd, StepdConfig};

/// Identifier for every detector the workspace ships, used by the evaluation
/// harness and the benchmark binaries to iterate "all detectors" uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// OPTWIN with a given robustness ρ (×1000, to stay `Eq`/`Hash`; e.g.
    /// `OptwinRho(100)` is ρ = 0.1).
    OptwinRho(u32),
    /// ADWIN.
    Adwin,
    /// DDM.
    Ddm,
    /// EDDM.
    Eddm,
    /// STEPD.
    Stepd,
    /// ECDD.
    Ecdd,
    /// Page–Hinkley (extension).
    PageHinkley,
    /// KSWIN (extension).
    Kswin,
}

impl DetectorKind {
    /// The display name used in tables (matches the paper's labels).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DetectorKind::OptwinRho(milli) => {
                format!("OPTWIN rho={:.1}", *milli as f64 / 1000.0)
            }
            DetectorKind::Adwin => "ADWIN".to_string(),
            DetectorKind::Ddm => "DDM".to_string(),
            DetectorKind::Eddm => "EDDM".to_string(),
            DetectorKind::Stepd => "STEPD".to_string(),
            DetectorKind::Ecdd => "ECDD".to_string(),
            DetectorKind::PageHinkley => "PageHinkley".to_string(),
            DetectorKind::Kswin => "KSWIN".to_string(),
        }
    }

    /// Whether the detector only accepts binary error indicators.
    #[must_use]
    pub fn binary_only(&self) -> bool {
        matches!(
            self,
            DetectorKind::Ddm | DetectorKind::Eddm | DetectorKind::Ecdd
        )
    }

    /// The detector line-up used throughout the paper's Table 1 and Table 2
    /// (three OPTWIN configurations plus the five baselines).
    #[must_use]
    pub fn paper_lineup() -> Vec<DetectorKind> {
        vec![
            DetectorKind::Adwin,
            DetectorKind::Ddm,
            DetectorKind::Eddm,
            DetectorKind::Stepd,
            DetectorKind::Ecdd,
            DetectorKind::OptwinRho(100),
            DetectorKind::OptwinRho(500),
            DetectorKind::OptwinRho(1000),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(DetectorKind::Adwin.label(), "ADWIN");
        assert_eq!(DetectorKind::OptwinRho(100).label(), "OPTWIN rho=0.1");
        assert_eq!(DetectorKind::OptwinRho(1000).label(), "OPTWIN rho=1.0");
    }

    #[test]
    fn binary_only_flags() {
        assert!(DetectorKind::Ddm.binary_only());
        assert!(DetectorKind::Eddm.binary_only());
        assert!(DetectorKind::Ecdd.binary_only());
        assert!(!DetectorKind::Adwin.binary_only());
        assert!(!DetectorKind::Stepd.binary_only());
        assert!(!DetectorKind::OptwinRho(500).binary_only());
    }

    #[test]
    fn paper_lineup_has_eight_entries() {
        let lineup = DetectorKind::paper_lineup();
        assert_eq!(lineup.len(), 8);
        assert!(lineup.contains(&DetectorKind::OptwinRho(500)));
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Deterministic pseudo-random streams and contract helpers shared by
    //! the detector tests.

    use optwin_core::{DriftDetector, DriftStatus};

    /// Asserts the batch/scalar contract for a detector: `add_batch` over
    /// `stream` (in several chunk sizes) reports exactly the drift and
    /// warning indices of an `add_element` fold, with identical counters.
    pub(crate) fn assert_batch_equivalence<D: DriftDetector>(
        build: impl Fn() -> D,
        stream: &[f64],
    ) {
        let mut scalar = build();
        let mut drifts = Vec::new();
        let mut warnings = Vec::new();
        for (i, &x) in stream.iter().enumerate() {
            match scalar.add_element(x) {
                DriftStatus::Drift => drifts.push(i),
                DriftStatus::Warning => warnings.push(i),
                DriftStatus::Stable => {}
            }
        }

        for &chunk in &[1usize, 13, 256, stream.len().max(1)] {
            let mut batched = build();
            let mut batch_drifts = Vec::new();
            let mut batch_warnings = Vec::new();
            for (k, xs) in stream.chunks(chunk).enumerate() {
                let outcome = batched.add_batch(xs);
                assert_eq!(outcome.len, xs.len());
                batch_drifts.extend(outcome.drift_indices.iter().map(|&i| k * chunk + i));
                batch_warnings.extend(outcome.warning_indices.iter().map(|&i| k * chunk + i));
            }
            assert_eq!(batch_drifts, drifts, "{}: chunk {chunk}", scalar.name());
            assert_eq!(batch_warnings, warnings, "{}: chunk {chunk}", scalar.name());
            assert_eq!(batched.elements_seen(), scalar.elements_seen());
            assert_eq!(batched.drifts_detected(), scalar.drifts_detected());
        }
    }

    /// Asserts the snapshot contract for a detector: snapshotting at each of
    /// `cuts` — in **both** the JSON and the compact binary layout — and
    /// restoring into a freshly built instance yields *identical* decisions
    /// and counters for the remaining stream (mirroring the OPTWIN
    /// equivalence test in `optwin-core`).
    pub(crate) fn assert_snapshot_equivalence<D: DriftDetector>(
        build: impl Fn() -> D,
        stream: &[f64],
        cuts: &[usize],
    ) {
        use optwin_core::SnapshotEncoding;
        for &cut in cuts {
            assert!(cut <= stream.len(), "cut {cut} beyond stream");
            let mut original = build();
            original.add_batch(&stream[..cut]);
            let json_state = original
                .snapshot_state()
                .unwrap_or_else(|| panic!("{} must support snapshots", original.name()));
            assert_eq!(
                Some(&json_state),
                original
                    .snapshot_state_encoded(SnapshotEncoding::Json)
                    .as_ref(),
                "{}: snapshot_state must be the JSON-encoded snapshot",
                original.name()
            );
            let binary_state = original
                .snapshot_state_encoded(SnapshotEncoding::Binary)
                .unwrap_or_else(|| panic!("{} must support binary snapshots", original.name()));

            for (layout, state) in [("json", &json_state), ("binary", &binary_state)] {
                let mut continued = build();
                continued.add_batch(&stream[..cut]);
                let mut restored = build();
                restored
                    .restore_state(state)
                    .unwrap_or_else(|e| panic!("{layout} restore at {cut} failed: {e}"));
                assert_eq!(restored.elements_seen(), continued.elements_seen());
                assert_eq!(restored.drifts_detected(), continued.drifts_detected());

                let rest = &stream[cut..];
                let a = continued.add_batch(rest);
                let b = restored.add_batch(rest);
                assert_eq!(
                    a,
                    b,
                    "{}: divergence after {layout} restore at {cut}",
                    continued.name()
                );
                assert_eq!(continued.elements_seen(), restored.elements_seen());
                assert_eq!(continued.drifts_detected(), restored.drifts_detected());
            }
        }
    }

    /// SplitMix64 jitter in [-0.5, 0.5).
    pub(crate) fn jitter(i: u64) -> f64 {
        let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    /// Deterministic Bernoulli error stream with a given error probability.
    pub(crate) fn bernoulli(i: u64, p: f64) -> f64 {
        if jitter(i) + 0.5 < p {
            1.0
        } else {
            0.0
        }
    }
}
