//! STEPD — Statistical Test of Equal Proportions Detector
//! (Nishida & Yamauchi, 2007).
//!
//! STEPD keeps the most recent `window_size` (default 30) prediction results
//! and compares the learner's accuracy in that recent window against its
//! accuracy over all older observations since the last reset, using the
//! two-proportion z-test with continuity correction. A small p-value means
//! recent accuracy is significantly different from the overall accuracy and a
//! drift (p < `alpha_drift`) or warning (p < `alpha_warning`) is reported.

use std::collections::VecDeque;

use optwin_core::snapshot::{check_version, field, invalid};
use optwin_core::{CoreError, DriftDetector, DriftStatus};
use optwin_stats::tests::equal_proportions_test;

/// Serialization format version of [`Stepd`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`Stepd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepdConfig {
    /// Size of the recent window (the original paper uses 30).
    pub window_size: usize,
    /// Significance level for drifts (default 0.003).
    pub alpha_drift: f64,
    /// Significance level for warnings (default 0.05).
    pub alpha_warning: f64,
}

impl Default for StepdConfig {
    fn default() -> Self {
        Self {
            window_size: 30,
            alpha_drift: 0.003,
            alpha_warning: 0.05,
        }
    }
}

/// The STEPD drift detector.
#[derive(Debug, Clone)]
pub struct Stepd {
    config: StepdConfig,
    /// Recent results: `true` = correct prediction.
    recent: VecDeque<bool>,
    /// Number of correct predictions in `recent`.
    recent_correct: u64,
    /// Older observations (since last reset) outside the recent window.
    older_total: u64,
    older_correct: u64,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl Stepd {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero or the significance levels are not in
    /// `(0, 1)` with `alpha_drift < alpha_warning`.
    #[must_use]
    pub fn new(config: StepdConfig) -> Self {
        assert!(config.window_size > 0, "STEPD window size must be positive");
        assert!(
            config.alpha_drift > 0.0
                && config.alpha_drift < config.alpha_warning
                && config.alpha_warning < 1.0,
            "STEPD significance levels must satisfy 0 < alpha_drift < alpha_warning < 1"
        );
        Self {
            config,
            recent: VecDeque::with_capacity(config.window_size),
            recent_correct: 0,
            older_total: 0,
            older_correct: 0,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the original paper's defaults
    /// (window 30, α_drift 0.003, α_warning 0.05).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(StepdConfig::default())
    }

    /// Overall accuracy since the last reset (diagnostics).
    #[must_use]
    pub fn overall_accuracy(&self) -> f64 {
        let total = self.older_total + self.recent.len() as u64;
        if total == 0 {
            return 0.0;
        }
        (self.older_correct + self.recent_correct) as f64 / total as f64
    }

    fn restart(&mut self) {
        self.recent.clear();
        self.recent_correct = 0;
        self.older_total = 0;
        self.older_correct = 0;
    }

    /// Window/counter maintenance shared by the scalar path and the batch
    /// warm-up run: graduation of the oldest recent result plus the push,
    /// without the proportions test.
    #[inline]
    fn push_result(&mut self, correct: bool) {
        if self.recent.len() == self.config.window_size {
            // The oldest recent observation graduates into the "older" pool.
            let graduated = self.recent.pop_front().expect("window is non-empty");
            if graduated {
                self.older_correct += 1;
                self.recent_correct -= 1;
            }
            self.older_total += 1;
        }
        self.recent.push_back(correct);
        if correct {
            self.recent_correct += 1;
        }
    }
}

impl DriftDetector for Stepd {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        // Input is an error indicator / loss; anything > 0 counts as a wrong
        // prediction, so "correct" is its complement.
        let correct = value <= 0.0;
        self.push_result(correct);

        // Only test once both segments are populated (the original paper
        // requires at least 2·window observations overall).
        if self.older_total < self.config.window_size as u64 {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        let result = equal_proportions_test(
            self.older_correct as f64,
            self.older_total as f64,
            self.recent_correct as f64,
            self.recent.len() as f64,
        );
        let status = match result {
            Ok(r) => {
                // Only react when recent accuracy dropped below the overall
                // accuracy (an accuracy increase is not a concept drift worth
                // retraining for).
                let recent_acc = self.recent_correct as f64 / self.recent.len() as f64;
                let older_acc = self.older_correct as f64 / self.older_total as f64;
                if recent_acc >= older_acc {
                    DriftStatus::Stable
                } else if r.p_value < self.config.alpha_drift {
                    self.drifts_detected += 1;
                    self.restart();
                    DriftStatus::Drift
                } else if r.p_value < self.config.alpha_warning {
                    DriftStatus::Warning
                } else {
                    DriftStatus::Stable
                }
            }
            Err(_) => DriftStatus::Stable,
        };
        self.last_status = status;
        status
    }

    /// Native batch path: elements ingested while the older pool is still
    /// filling (`older_total < window_size`) cannot trigger the proportions
    /// test, so whole warm-up runs — including the refill after every drift
    /// restart — skip the test plumbing entirely and reduce to queue/counter
    /// maintenance. The run length is computed in closed form from the
    /// current state: the recent window first fills without graduations, then
    /// each element graduates one result into the older pool.
    fn add_batch(&mut self, values: &[f64]) -> optwin_core::BatchOutcome {
        let mut outcome = optwin_core::BatchOutcome::with_len(values.len());
        let window = self.config.window_size as u64;
        let mut i = 0usize;
        while i < values.len() {
            if self.older_total < window {
                let fill = (self.config.window_size - self.recent.len()) as u64;
                // The `- 1` excludes the element whose graduation brings the
                // older pool to `window_size`: that one runs the test.
                let warm = (fill + (window - self.older_total)).saturating_sub(1);
                let take = usize::try_from(warm)
                    .unwrap_or(usize::MAX)
                    .min(values.len() - i);
                if take > 0 {
                    for &value in &values[i..i + take] {
                        self.push_result(value <= 0.0);
                    }
                    self.elements_seen += take as u64;
                    self.last_status = DriftStatus::Stable;
                    outcome.record(i + take - 1, DriftStatus::Stable);
                    i += take;
                    continue;
                }
            }
            outcome.record(i, self.add_element(values[i]));
            i += 1;
        }
        outcome
    }

    fn reset(&mut self) {
        self.restart();
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "STEPD"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    /// Struct size plus the recent-results ring, counted at capacity.
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self) + self.recent.capacity() * std::mem::size_of::<bool>()
    }

    fn supports_real_valued_input(&self) -> bool {
        true
    }

    /// Serializes the recent result window plus the integer "older" pool
    /// counters. `recent_correct` is derived (the number of `true` entries in
    /// the window), so it is recomputed on restore rather than trusted from
    /// the wire.
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// [`Stepd::snapshot_state`] with an explicit window layout: the recent
    /// result window serializes as a JSON bool array or a bit-packed binary
    /// blob (one bit per buffered result).
    fn snapshot_state_encoded(
        &self,
        encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        let recent: Vec<bool> = self.recent.iter().copied().collect();
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            (
                "recent".to_string(),
                optwin_core::snapshot::bool_seq_value(encoding, &recent),
            ),
            (
                "older_total".to_string(),
                serde::Value::UInt(self.older_total),
            ),
            (
                "older_correct".to_string(),
                serde::Value::UInt(self.older_correct),
            ),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "STEPD")?;
        let recent: Vec<bool> = optwin_core::snapshot::bool_seq_field(state, "recent")?;
        if recent.len() > self.config.window_size {
            return Err(invalid(format!(
                "recent window has {} entries, configuration allows {}",
                recent.len(),
                self.config.window_size
            )));
        }
        let older_total: u64 = field(state, "older_total")?;
        let older_correct: u64 = field(state, "older_correct")?;
        if older_correct > older_total {
            return Err(invalid(format!(
                "older_correct ({older_correct}) exceeds older_total ({older_total})"
            )));
        }
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.recent_correct = recent.iter().filter(|&&c| c).count() as u64;
        self.recent = recent.into_iter().collect();
        self.older_total = older_total;
        self.older_correct = older_correct;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::bernoulli;

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn rejects_zero_window() {
        let _ = Stepd::new(StepdConfig {
            window_size: 0,
            ..StepdConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "significance levels")]
    fn rejects_inverted_alphas() {
        let _ = Stepd::new(StepdConfig {
            window_size: 30,
            alpha_drift: 0.1,
            alpha_warning: 0.01,
        });
    }

    #[test]
    fn stable_accuracy_is_stable() {
        let mut d = Stepd::with_defaults();
        let mut drifts = 0;
        for i in 0..20_000u64 {
            if d.add_element(bernoulli(i, 0.2)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        // STEPD is known for a comparatively high false-positive rate (the
        // paper measured up to dozens per run); bound it loosely.
        assert!(drifts <= 20, "too many false positives: {drifts}");
        assert!((d.overall_accuracy() - 0.8).abs() < 0.15);
    }

    #[test]
    fn accuracy_drop_detected_quickly() {
        let mut d = Stepd::with_defaults();
        let mut detected_at = None;
        for i in 0..4_000u64 {
            let p = if i < 2_000 { 0.05 } else { 0.60 };
            if d.add_element(bernoulli(i, p)) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("STEPD must detect the accuracy drop");
        assert!(at >= 2_000, "false positive at {at}");
        // STEPD reacts within a few recent-window lengths.
        assert!(at < 2_200, "delay too large: {}", at - 2_000);
    }

    #[test]
    fn accuracy_increase_not_flagged() {
        let mut d = Stepd::with_defaults();
        for i in 0..4_000u64 {
            let p = if i < 2_000 { 0.6 } else { 0.05 };
            assert_ne!(d.add_element(bernoulli(i, p)), DriftStatus::Drift);
        }
    }

    #[test]
    fn warning_zone_exists() {
        let mut d = Stepd::new(StepdConfig {
            window_size: 30,
            alpha_drift: 0.0001,
            alpha_warning: 0.2,
        });
        let mut warnings = 0;
        for i in 0..3_000u64 {
            let p = if i < 2_000 { 0.1 } else { 0.3 };
            if d.add_element(bernoulli(i, p)) == DriftStatus::Warning {
                warnings += 1;
            }
        }
        assert!(warnings > 0, "a moderate shift should produce warnings");
    }

    #[test]
    fn reset_and_metadata() {
        let mut d = Stepd::with_defaults();
        for i in 0..200u64 {
            d.add_element(bernoulli(i, 0.2));
        }
        d.reset();
        assert_eq!(d.overall_accuracy(), 0.0);
        assert_eq!(d.elements_seen(), 200);
        assert_eq!(d.name(), "STEPD");
        assert!(d.supports_real_valued_input());
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let p = match i {
                    0..=2_999 => 0.08,
                    3_000..=5_499 => 0.40,
                    _ => 0.70,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(Stepd::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let p = match i {
                    0..=2_999 => 0.08,
                    3_000..=5_499 => 0.40,
                    _ => 0.70,
                };
                bernoulli(i, p)
            })
            .collect();
        crate::test_util::assert_snapshot_equivalence(
            Stepd::with_defaults,
            &stream,
            &[0, 15, 1_200, 3_100, 8_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Stepd::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Stepd::with_defaults();
        for i in 0..200u64 {
            donor.add_element(bernoulli(i, 0.2));
        }
        let state = donor.snapshot_state().unwrap();
        // A smaller restoring window rejects the oversized recent buffer.
        let mut small = Stepd::new(StepdConfig {
            window_size: 5,
            ..StepdConfig::default()
        });
        let err = small.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("recent window"), "{err}");

        // Inconsistent older-pool counters are rejected.
        let serde::Value::Object(mut fields) = state else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "older_correct" {
                *v = serde::Value::UInt(1_000_000);
            }
        }
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("older_correct"), "{err}");
    }
}
