//! Composite detectors: cheap-first [`Cascade`]s and k-of-N [`Ensemble`]s.
//!
//! The paper's eight detectors differ by orders of magnitude in per-element
//! cost (DDM, EDDM and Page–Hinkley are a handful of accumulator updates;
//! OPTWIN and KSWIN maintain large windows and run expensive cut/KS scans)
//! while differing far less in *when* they first raise a warning. The two
//! composites in this module exploit that asymmetry:
//!
//! * [`Cascade`] pairs a cheap **guard** with an expensive **confirmer**. On
//!   the stable path only the guard runs; the confirmer is *dormant* — not
//!   fed, not allocated. When the guard leaves [`DriftStatus::Stable`] the
//!   cascade **escalates**: the confirmer is rebuilt from its
//!   [`DetectorSpec`] and warm-started from a small bounded replay ring of
//!   the most recent values, then runs element-wise until it either confirms
//!   a drift or judges the stream stable for a configurable cooldown of
//!   consecutive elements, at which point it is dropped again (while
//!   escalated the confirmer's verdict alone drives the cooldown — a twitchy
//!   guard cannot hold the expensive detector live). A drift the confirmer finds *in the ring
//!   itself* during warm-start confirms the escalation on the spot — a slow
//!   guard may escalate only once the ring already spans the change. The
//!   guard arbitrates *escalation*; the confirmer alone arbitrates *drift*.
//! * [`Ensemble`] runs N child detectors on every element and reports drift
//!   (or warning) when at least `vote` of them agree — the robustness play
//!   to the cascade's throughput play. Because detectors fire at slightly
//!   different points even on the same abrupt shift, a member's drift vote
//!   stays live for `horizon` elements rather than counting only
//!   exact-same-element coincidences.
//!
//! Both implement the full [`DriftDetector`] contract — batch/element
//! bit-exactness, snapshot/restore exactness (nested child state, with the
//! dormant-confirmer flag persisted as a `null` child), and
//! capacity-counting [`DriftDetector::mem_footprint`] — so they ride the
//! engine's ingestion, hibernation, checkpoint and migration machinery
//! unchanged. They are built declaratively through the
//! [`DetectorSpec`] grammar's nested forms (see [`crate::spec`]):
//!
//! ```text
//! cascade:guard=ddm,confirm=optwin:delta=0.01
//! ensemble:vote=2,members=[ddm|ecdd|ph]
//! ```
//!
//! # Determinism of escalation
//!
//! The cascade never resets or rewinds the guard: the guard's trajectory
//! depends only on the input stream, which is what makes the batch path
//! exact (one `guard.add_batch` over the whole slice) and keeps the guard's
//! own calibration (e.g. DDM's running minima) intact across escalations.
//! Escalation points, the replay ring contents used to warm-start the
//! confirmer, and de-escalation points are all pure functions of the input
//! prefix, so a cascade snapshotted mid-escalation restores bit-exactly.

use std::collections::VecDeque;

use optwin_core::snapshot::{check_version, f64_seq_field, f64_seq_value, field, invalid};
use optwin_core::{BatchOutcome, CoreError, DriftDetector, DriftStatus, SnapshotEncoding};

use crate::spec::DetectorSpec;

/// Serialization format version of [`Cascade`]'s and [`Ensemble`]'s state
/// snapshots.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration of a [`Cascade`]: the guard and confirmer specs plus the
/// escalation-protocol knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeConfig {
    /// The always-on cheap detector whose non-stable statuses trigger
    /// escalation (boxed: specs nest recursively).
    pub guard: Box<DetectorSpec>,
    /// The expensive detector woken inside warning zones; its drifts are the
    /// cascade's drifts.
    pub confirm: Box<DetectorSpec>,
    /// Capacity of the replay ring: how many of the most recent values (since
    /// the last confirmed drift) warm-start a freshly woken confirmer
    /// (default 256).
    pub replay: usize,
    /// Consecutive confirmer-stable elements after which an escalated cascade
    /// drops its confirmer again (default 256).
    pub cooldown: u32,
}

impl Default for CascadeConfig {
    /// DDM guarding OPTWIN — the pairing named by the roadmap — with a
    /// 256-element replay ring and cooldown.
    fn default() -> Self {
        Self {
            guard: Box::new(DetectorSpec::default_for("ddm").expect("ddm is a valid id")),
            confirm: Box::new(DetectorSpec::default_for("optwin").expect("optwin is a valid id")),
            replay: 256,
            cooldown: 256,
        }
    }
}

/// Configuration of an [`Ensemble`]: the member specs, the vote threshold,
/// and the drift-vote horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleConfig {
    /// Minimum number of members that must agree for the ensemble to report
    /// a drift (or warning) — `k` of N (default 2).
    pub vote: usize,
    /// The child detector specs, all fed every element.
    pub members: Vec<DetectorSpec>,
    /// How many elements a member's drift vote stays live (default 256).
    /// Detectors fire at slightly different points even on the same abrupt
    /// shift, so requiring `vote` drifts on the *same element*
    /// (`horizon=1`) would almost never trigger; the ensemble instead
    /// counts members that drifted within the last `horizon` elements.
    pub horizon: u32,
}

impl Default for EnsembleConfig {
    /// A 2-of-3 vote over the three cheapest binary baselines, with drift
    /// votes latched for 256 elements.
    fn default() -> Self {
        Self {
            vote: 2,
            members: vec![
                DetectorSpec::default_for("ddm").expect("ddm is a valid id"),
                DetectorSpec::default_for("ecdd").expect("ecdd is a valid id"),
                DetectorSpec::default_for("page_hinkley").expect("page_hinkley is a valid id"),
            ],
            horizon: 256,
        }
    }
}

/// A cheap-first cascade: guard always on, confirmer woken on demand. See
/// the [module documentation](self) for the protocol.
pub struct Cascade {
    guard: Box<dyn DriftDetector + Send>,
    /// `None` while dormant — the persisted dormant flag is a `null`
    /// confirmer entry in the snapshot.
    confirmer: Option<Box<dyn DriftDetector + Send>>,
    /// Spec the confirmer is rebuilt from at every escalation (and at
    /// restore of a mid-escalation snapshot).
    confirm_spec: DetectorSpec,
    /// The most recent ≤ `replay_cap` values since the last confirmed drift.
    replay: VecDeque<f64>,
    replay_cap: usize,
    cooldown: u32,
    /// Consecutive both-stable elements while escalated.
    stable_streak: u32,
    elements_seen: u64,
    drifts_detected: u64,
    /// Lifetime dormant→escalated transitions.
    escalations: u64,
    last_status: DriftStatus,
    real_valued: bool,
}

impl Cascade {
    /// Builds the cascade: the guard is constructed immediately, the
    /// confirmer spec is validated but stays dormant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when either child spec fails
    /// validation, `replay` is zero, or `cooldown` is zero.
    pub fn new(config: CascadeConfig) -> Result<Self, CoreError> {
        let bad = |field: &'static str, message: &str| CoreError::InvalidConfig {
            field,
            message: message.to_string(),
        };
        if config.replay == 0 {
            return Err(bad("replay", "must be positive"));
        }
        if config.cooldown == 0 {
            return Err(bad("cooldown", "must be positive"));
        }
        config.confirm.validate()?;
        let guard = config.guard.build()?;
        let real_valued = !config.guard.binary_only() && !config.confirm.binary_only();
        Ok(Self {
            guard,
            confirmer: None,
            confirm_spec: (*config.confirm).clone(),
            replay: VecDeque::with_capacity(config.replay),
            replay_cap: config.replay,
            cooldown: config.cooldown,
            stable_streak: 0,
            elements_seen: 0,
            drifts_detected: 0,
            escalations: 0,
            last_status: DriftStatus::Stable,
            real_valued,
        })
    }

    /// `true` while the confirmer is live (between an escalation and the
    /// next confirmed drift or cooldown expiry).
    #[must_use]
    pub fn is_escalated(&self) -> bool {
        self.confirmer.is_some()
    }

    /// Lifetime dormant→escalated transitions.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Pushes one value into the bounded replay ring.
    fn push_replay(&mut self, value: f64) {
        if self.replay.len() == self.replay_cap {
            self.replay.pop_front();
        }
        self.replay.push_back(value);
    }

    /// Extends the ring with a run of values known to be drift-free — the
    /// batch fast path's equivalent of per-element [`Cascade::push_replay`].
    fn extend_replay(&mut self, values: &[f64]) {
        if values.len() >= self.replay_cap {
            self.replay.clear();
            self.replay
                .extend(values[values.len() - self.replay_cap..].iter().copied());
        } else {
            while self.replay.len() + values.len() > self.replay_cap {
                self.replay.pop_front();
            }
            self.replay.extend(values.iter().copied());
        }
    }

    /// The escalation-protocol step for one element, *after* the guard has
    /// ingested it. `guard_status` is the guard's verdict for this element;
    /// `value` has not yet been pushed into the replay ring.
    fn step_after_guard(&mut self, value: f64, guard_status: DriftStatus) -> DriftStatus {
        if self.confirmer.is_none() && guard_status != DriftStatus::Stable {
            // Wake the confirmer: rebuild from spec (validated at
            // construction, so this cannot fail) and warm-start it from the
            // replay ring.
            let mut confirmer = self
                .confirm_spec
                .build()
                .expect("confirm spec validated at construction");
            let (front, back) = self.replay.as_slices();
            let front_fired = !confirmer.add_batch(front).drift_indices.is_empty();
            let back_fired = !confirmer.add_batch(back).drift_indices.is_empty();
            self.escalations += 1;
            self.stable_streak = 0;
            if front_fired || back_fired {
                // The ring alone already holds a confirmable change: a slow
                // guard escalated late enough that the confirmer fires during
                // warm-start. Discarding that verdict would swallow exactly
                // the escalations with the strongest evidence (the reset
                // confirmer would only ever see the post-change regime), so
                // it confirms this escalation immediately.
                self.drifts_detected += 1;
                self.replay.clear();
                self.last_status = DriftStatus::Drift;
                return DriftStatus::Drift;
            }
            self.confirmer = Some(confirmer);
        }
        let status = match self.confirmer.as_mut() {
            None => DriftStatus::Stable,
            Some(confirmer) => match confirmer.add_element(value) {
                DriftStatus::Drift => {
                    // The confirmer confirmed: drop it (the next escalation
                    // starts fresh) and clear the ring — post-drift values
                    // belong to the new concept. The guard is deliberately
                    // *not* reset; see the module docs.
                    self.drifts_detected += 1;
                    self.confirmer = None;
                    self.replay.clear();
                    self.stable_streak = 0;
                    DriftStatus::Drift
                }
                confirm_status => {
                    // While escalated the confirmer is the authority: only
                    // its verdict drives the cooldown streak. A twitchy guard
                    // (DDM right after its own self-reset warns sparsely for
                    // thousands of elements) must not hold the expensive
                    // detector live — that pays confirmer prices exactly when
                    // the guard is least reliable. If the guard was right
                    // after all, its next warning re-escalates with a warm
                    // start from the ring.
                    if confirm_status == DriftStatus::Warning {
                        self.stable_streak = 0;
                    } else {
                        self.stable_streak += 1;
                        if self.stable_streak >= self.cooldown {
                            self.confirmer = None;
                            self.stable_streak = 0;
                        }
                    }
                    if guard_status != DriftStatus::Stable || confirm_status == DriftStatus::Warning
                    {
                        DriftStatus::Warning
                    } else {
                        DriftStatus::Stable
                    }
                }
            },
        };
        if status != DriftStatus::Drift {
            self.push_replay(value);
        }
        self.last_status = status;
        status
    }
}

impl DriftDetector for Cascade {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        let guard_status = self.guard.add_element(value);
        self.step_after_guard(value, guard_status)
    }

    /// Native batch path. The guard ingests the whole slice through its own
    /// batch kernel first — exact because the cascade never mutates the
    /// guard — and when it stayed entirely stable over a dormant cascade
    /// (the common case), the only remaining work is extending the replay
    /// ring. Otherwise the escalation protocol walks the elements using the
    /// guard statuses reconstructed from the batch outcome — but every
    /// stretch where the cascade is dormant and the guard stayed stable is
    /// still handled in bulk (elements there can only extend the ring), so
    /// one early warning does not demote the rest of a large batch to the
    /// element-wise path.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let guard_outcome = self.guard.add_batch(values);
        if self.confirmer.is_none()
            && guard_outcome.drift_indices.is_empty()
            && guard_outcome.warning_indices.is_empty()
        {
            self.elements_seen += values.len() as u64;
            self.extend_replay(values);
            if !values.is_empty() {
                self.last_status = DriftStatus::Stable;
            }
            return BatchOutcome::with_len(values.len());
        }
        let mut outcome = BatchOutcome::with_len(values.len());
        let mut drifts = guard_outcome.drift_indices.iter().copied().peekable();
        let mut warnings = guard_outcome.warning_indices.iter().copied().peekable();
        let mut i = 0;
        while i < values.len() {
            if self.confirmer.is_none() {
                // Dormant: bulk-extend the ring up to the guard's next
                // non-stable element (bit-identical to stepping each stable
                // element, which only pushes into the ring).
                let next = drifts
                    .peek()
                    .copied()
                    .unwrap_or(values.len())
                    .min(warnings.peek().copied().unwrap_or(values.len()));
                if next > i {
                    self.elements_seen += (next - i) as u64;
                    self.extend_replay(&values[i..next]);
                    self.last_status = DriftStatus::Stable;
                    i = next;
                    continue;
                }
            }
            let guard_status = if drifts.peek() == Some(&i) {
                drifts.next();
                DriftStatus::Drift
            } else if warnings.peek() == Some(&i) {
                warnings.next();
                DriftStatus::Warning
            } else {
                DriftStatus::Stable
            };
            self.elements_seen += 1;
            outcome.record(i, self.step_after_guard(values[i], guard_status));
            i += 1;
        }
        outcome
    }

    fn reset(&mut self) {
        self.guard.reset();
        self.confirmer = None;
        self.replay.clear();
        self.stable_streak = 0;
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "CASCADE"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        self.real_valued
    }

    /// Struct size plus the replay ring at capacity, the guard's full
    /// footprint, and the confirmer's footprint while it is live. A dormant
    /// confirmer costs nothing — but the ring that would warm-start it stays
    /// counted, so the hibernation audit never reads an idle cascade as
    /// guard-only.
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self)
            + self.replay.capacity() * std::mem::size_of::<f64>()
            + self.guard.mem_footprint()
            + self
                .confirmer
                .as_ref()
                .map_or(0, |confirmer| confirmer.mem_footprint())
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(SnapshotEncoding::Json)
    }

    /// Nested snapshot: the guard's (and, when live, the confirmer's) own
    /// encoded state embedded as sub-objects, the replay ring in the
    /// requested sequence layout, and a `null` confirmer as the persisted
    /// dormant flag. `elements_seen` / `drifts_detected` stay top-level so
    /// the engine's hibernation tier can audit sleeping cascades.
    fn snapshot_state_encoded(&self, encoding: SnapshotEncoding) -> Option<serde::Value> {
        let guard = self.guard.snapshot_state_encoded(encoding)?;
        let confirmer = match self.confirmer.as_ref() {
            Some(confirmer) => confirmer.snapshot_state_encoded(encoding)?,
            None => serde::Value::Null,
        };
        use serde::Serialize as _;
        let replay: Vec<f64> = self.replay.iter().copied().collect();
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            (
                "escalations".to_string(),
                serde::Value::UInt(self.escalations),
            ),
            (
                "stable_streak".to_string(),
                serde::Value::UInt(u64::from(self.stable_streak)),
            ),
            ("replay".to_string(), f64_seq_value(encoding, &replay)),
            ("last_status".to_string(), self.last_status.to_value()),
            ("guard".to_string(), guard),
            ("confirmer".to_string(), confirmer),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "CASCADE")?;
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let escalations: u64 = field(state, "escalations")?;
        let stable_streak: u32 = field(state, "stable_streak")?;
        let replay = f64_seq_field(state, "replay")?;
        if replay.len() > self.replay_cap {
            return Err(invalid(format!(
                "replay ring has {} entries, configuration allows {}",
                replay.len(),
                self.replay_cap
            )));
        }
        let last_status: DriftStatus = field(state, "last_status")?;
        let guard_state = state
            .get("guard")
            .ok_or_else(|| invalid("missing field `guard`"))?;
        let confirmer_state = state
            .get("confirmer")
            .ok_or_else(|| invalid("missing field `confirmer`"))?;
        // Rebuild + restore the confirmer before touching `self`, and
        // restore the guard (itself all-or-nothing) last among the fallible
        // steps, so a bad snapshot leaves the cascade unchanged.
        let confirmer = match confirmer_state {
            serde::Value::Null => None,
            live => {
                let mut confirmer = self.confirm_spec.build().map_err(|e| {
                    invalid(format!("rebuilding confirmer from its spec failed: {e}"))
                })?;
                confirmer.restore_state(live)?;
                Some(confirmer)
            }
        };
        self.guard.restore_state(guard_state)?;
        self.confirmer = confirmer;
        self.replay = {
            let mut ring = VecDeque::with_capacity(self.replay_cap);
            ring.extend(replay);
            ring
        };
        self.stable_streak = stable_streak;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.escalations = escalations;
        self.last_status = last_status;
        Ok(())
    }
}

/// A k-of-N voting ensemble over independent child detectors. See the
/// [module documentation](self).
pub struct Ensemble {
    members: Vec<Box<dyn DriftDetector + Send>>,
    /// Specs the members are rebuilt from on restore (all-or-nothing).
    member_specs: Vec<DetectorSpec>,
    vote: usize,
    horizon: u32,
    /// Per member: how many more elements its latest drift vote stays live
    /// (0 = no recent drift). Cleared across the board when the ensemble
    /// itself reports a drift, so one burst yields one ensemble drift.
    drift_ttls: Vec<u32>,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
    real_valued: bool,
}

impl Ensemble {
    /// Builds every member. Members are fully independent: each self-resets
    /// on its own drifts, and an ensemble-level drift does not reset anyone
    /// (only the latched drift votes are cleared).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `members` is empty, `vote`
    /// is outside `1..=members.len()`, `horizon` is zero, or any member
    /// spec fails validation.
    pub fn new(config: EnsembleConfig) -> Result<Self, CoreError> {
        if config.members.is_empty() {
            return Err(CoreError::InvalidConfig {
                field: "members",
                message: "must name at least one member".to_string(),
            });
        }
        if config.vote == 0 || config.vote > config.members.len() {
            return Err(CoreError::InvalidConfig {
                field: "vote",
                message: format!(
                    "must lie in 1..={}, got {}",
                    config.members.len(),
                    config.vote
                ),
            });
        }
        if config.horizon == 0 {
            return Err(CoreError::InvalidConfig {
                field: "horizon",
                message: "must be positive".to_string(),
            });
        }
        let members = config
            .members
            .iter()
            .map(DetectorSpec::build)
            .collect::<Result<Vec<_>, _>>()?;
        let real_valued = config.members.iter().all(|m| !m.binary_only());
        Ok(Self {
            drift_ttls: vec![0; members.len()],
            members,
            member_specs: config.members,
            vote: config.vote,
            horizon: config.horizon,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
            real_valued,
        })
    }

    /// The ensemble verdict for one element, after every member's
    /// drift-vote TTL has been updated for it. `warning_votes` counts the
    /// members at [`DriftStatus::Warning`] or above *on this element*;
    /// drift votes are the latched TTLs.
    fn verdict(&mut self, warning_votes: usize) -> DriftStatus {
        let drift_votes = self.drift_ttls.iter().filter(|&&ttl| ttl > 0).count();
        let status = if drift_votes >= self.vote {
            self.drifts_detected += 1;
            self.drift_ttls.fill(0);
            DriftStatus::Drift
        } else if warning_votes >= self.vote {
            DriftStatus::Warning
        } else {
            DriftStatus::Stable
        };
        self.last_status = status;
        status
    }
}

impl DriftDetector for Ensemble {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        let mut warning_votes = 0usize;
        for (member, ttl) in self.members.iter_mut().zip(&mut self.drift_ttls) {
            match member.add_element(value) {
                DriftStatus::Drift => {
                    *ttl = self.horizon;
                    warning_votes += 1;
                }
                DriftStatus::Warning => {
                    *ttl = ttl.saturating_sub(1);
                    warning_votes += 1;
                }
                DriftStatus::Stable => *ttl = ttl.saturating_sub(1),
            }
        }
        self.verdict(warning_votes)
    }

    /// Native batch path: every member ingests the slice through its own
    /// batch kernel, then the per-element vote evolution is replayed from
    /// the members' outcome indices. Exact because members are independent
    /// and each member's batch path is contractually exact.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let len = values.len();
        let n = self.members.len();
        // One status row per member: 0 = stable, 1 = warning, 2 = drift.
        let mut grid = vec![0u8; n * len];
        for (m, member) in self.members.iter_mut().enumerate() {
            let outcome = member.add_batch(values);
            let row = &mut grid[m * len..(m + 1) * len];
            for &i in &outcome.warning_indices {
                row[i] = 1;
            }
            for &i in &outcome.drift_indices {
                row[i] = 2;
            }
        }
        let mut outcome = BatchOutcome::with_len(len);
        for i in 0..len {
            self.elements_seen += 1;
            let mut warning_votes = 0usize;
            for (m, ttl) in self.drift_ttls.iter_mut().enumerate() {
                match grid[m * len + i] {
                    2 => {
                        *ttl = self.horizon;
                        warning_votes += 1;
                    }
                    1 => {
                        *ttl = ttl.saturating_sub(1);
                        warning_votes += 1;
                    }
                    _ => *ttl = ttl.saturating_sub(1),
                }
            }
            outcome.record(i, self.verdict(warning_votes));
        }
        outcome
    }

    fn reset(&mut self) {
        for member in &mut self.members {
            member.reset();
        }
        self.drift_ttls.fill(0);
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "ENSEMBLE"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        self.real_valued
    }

    /// Struct size plus the member and vote tables and every member's own
    /// footprint.
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self)
            + self.members.capacity() * std::mem::size_of::<Box<dyn DriftDetector + Send>>()
            + self.drift_ttls.capacity() * std::mem::size_of::<u32>()
            + self
                .members
                .iter()
                .map(|member| member.mem_footprint())
                .sum::<usize>()
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(SnapshotEncoding::Json)
    }

    fn snapshot_state_encoded(&self, encoding: SnapshotEncoding) -> Option<serde::Value> {
        use serde::Serialize as _;
        let members = self
            .members
            .iter()
            .map(|member| member.snapshot_state_encoded(encoding))
            .collect::<Option<Vec<_>>>()?;
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
            (
                "drift_ttls".to_string(),
                serde::Value::Array(
                    self.drift_ttls
                        .iter()
                        .map(|&ttl| serde::Value::UInt(u64::from(ttl)))
                        .collect(),
                ),
            ),
            ("members".to_string(), serde::Value::Array(members)),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        use serde::Deserialize as _;
        check_version(state, SNAPSHOT_VERSION, "ENSEMBLE")?;
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;
        let serde::Value::Array(member_states) = state
            .get("members")
            .ok_or_else(|| invalid("missing field `members`"))?
        else {
            return Err(invalid("field `members` must be an array"));
        };
        if member_states.len() != self.member_specs.len() {
            return Err(invalid(format!(
                "snapshot has {} member states, configuration has {} members",
                member_states.len(),
                self.member_specs.len()
            )));
        }
        let serde::Value::Array(ttl_values) = state
            .get("drift_ttls")
            .ok_or_else(|| invalid("missing field `drift_ttls`"))?
        else {
            return Err(invalid("field `drift_ttls` must be an array"));
        };
        if ttl_values.len() != self.member_specs.len() {
            return Err(invalid(format!(
                "snapshot has {} drift_ttls entries, configuration has {} members",
                ttl_values.len(),
                self.member_specs.len()
            )));
        }
        let mut drift_ttls = Vec::with_capacity(ttl_values.len());
        for value in ttl_values {
            let ttl = u32::from_value(value).map_err(|e| invalid(e.to_string()))?;
            if ttl > self.horizon {
                return Err(invalid(format!(
                    "drift_ttls entry {ttl} exceeds the configured horizon {}",
                    self.horizon
                )));
            }
            drift_ttls.push(ttl);
        }
        // Restore into freshly built members and swap in only on full
        // success, so a bad snapshot leaves the ensemble unchanged.
        let mut members = Vec::with_capacity(self.member_specs.len());
        for (spec, member_state) in self.member_specs.iter().zip(member_states) {
            let mut member = spec
                .build()
                .map_err(|e| invalid(format!("rebuilding member from its spec failed: {e}")))?;
            member.restore_state(member_state)?;
            members.push(member);
        }
        self.members = members;
        self.drift_ttls = drift_ttls;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{assert_batch_equivalence, assert_snapshot_equivalence, bernoulli};

    /// A binary error stream whose error rate jumps from 5 % to 45 % at
    /// `drift_at` — enough to escalate and confirm on every pairing.
    fn drifting_stream(len: usize, drift_at: usize) -> Vec<f64> {
        (0..len)
            .map(|i| bernoulli(i as u64, if i < drift_at { 0.05 } else { 0.45 }))
            .collect()
    }

    fn cascade_config(guard: &str, confirm: &str) -> CascadeConfig {
        CascadeConfig {
            guard: Box::new(guard.parse().unwrap()),
            confirm: Box::new(confirm.parse().unwrap()),
            ..CascadeConfig::default()
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let zero_replay = CascadeConfig {
            replay: 0,
            ..CascadeConfig::default()
        };
        assert!(Cascade::new(zero_replay).is_err());
        let zero_cooldown = CascadeConfig {
            cooldown: 0,
            ..CascadeConfig::default()
        };
        assert!(Cascade::new(zero_cooldown).is_err());

        let no_members = EnsembleConfig {
            members: Vec::new(),
            ..EnsembleConfig::default()
        };
        assert!(Ensemble::new(no_members).is_err());
        let vote_too_high = EnsembleConfig {
            vote: 4,
            ..EnsembleConfig::default()
        };
        assert!(Ensemble::new(vote_too_high).is_err());
        let vote_zero = EnsembleConfig {
            vote: 0,
            ..EnsembleConfig::default()
        };
        assert!(Ensemble::new(vote_zero).is_err());
    }

    #[test]
    fn cascade_metadata_and_input_domain() {
        let d = Cascade::new(CascadeConfig::default()).unwrap();
        assert_eq!(d.name(), "CASCADE");
        // DDM guard is binary-only, so the cascade is too.
        assert!(!d.supports_real_valued_input());
        let real = Cascade::new(cascade_config("adwin", "kswin")).unwrap();
        assert!(real.supports_real_valued_input());
    }

    #[test]
    fn cascade_escalates_confirms_and_deescalates() {
        let mut d = Cascade::new(CascadeConfig::default()).unwrap();
        let stream = drifting_stream(6_000, 3_000);
        assert!(!d.is_escalated());
        let outcome = d.add_batch(&stream[..3_000]);
        // A quiet stream may still brush the guard's warning level, but a
        // confirmed drift before the shift would be a false positive.
        assert_eq!(outcome.drifts(), 0, "false positive before the shift");
        let outcome = d.add_batch(&stream[3_000..]);
        assert!(outcome.has_drift(), "missed the error-rate jump");
        assert!(d.escalations() >= 1);
        assert!(d.drifts_detected() >= 1);
        // After the drift the ring was cleared and the confirmer dropped;
        // feeding a long quiet tail keeps (or returns) the cascade dormant.
        let tail: Vec<f64> = (0..4_000).map(|i| bernoulli(90_000 + i, 0.05)).collect();
        d.add_batch(&tail);
        assert!(!d.is_escalated(), "cooldown must de-escalate on quiet data");
    }

    #[test]
    fn guard_warning_alone_never_confirms_drift() {
        // A cascade whose confirmer needs far more evidence than the guard:
        // the guard's solo warnings surface as cascade warnings, never as
        // drifts.
        let mut d = Cascade::new(cascade_config(
            "ddm:warning_level=0.5,drift_level=8",
            "optwin",
        ))
        .unwrap();
        let stream = drifting_stream(2_000, 1_000);
        let mut fold_drifts = 0;
        let mut fold_warnings = 0;
        for &x in &stream {
            match d.add_element(x) {
                DriftStatus::Drift => fold_drifts += 1,
                DriftStatus::Warning => fold_warnings += 1,
                DriftStatus::Stable => {}
            }
        }
        assert!(fold_warnings > 0, "guard must at least warn on the shift");
        assert_eq!(
            fold_drifts as u64,
            d.drifts_detected(),
            "cascade drift count must match reported drifts"
        );
    }

    #[test]
    fn cascade_batch_matches_element_fold() {
        let stream = drifting_stream(4_000, 2_000);
        for (guard, confirm) in [
            ("ddm", "optwin:w_max=500"),
            ("ecdd", "kswin"),
            ("page_hinkley", "adwin"),
            ("ddm", "stepd"),
        ] {
            assert_batch_equivalence(
                || Cascade::new(cascade_config(guard, confirm)).unwrap(),
                &stream,
            );
        }
    }

    #[test]
    fn cascade_snapshot_restore_resumes_identically() {
        let stream = drifting_stream(4_000, 2_000);
        // Cuts on the stable path, right around the escalation zone, and
        // after the confirmed drift.
        assert_snapshot_equivalence(
            || Cascade::new(cascade_config("ddm", "optwin:w_max=500")).unwrap(),
            &stream,
            &[0, 500, 2_010, 2_050, 2_400, 4_000],
        );
    }

    #[test]
    fn cascade_snapshot_persists_dormant_flag_mid_escalation() {
        let mut d = Cascade::new(cascade_config("ddm", "optwin:w_max=500")).unwrap();
        let stream = drifting_stream(4_000, 2_000);
        let mut cut = None;
        for (i, &x) in stream.iter().enumerate() {
            d.add_element(x);
            if d.is_escalated() {
                cut = Some(i);
                break;
            }
        }
        let cut = cut.expect("the shift must escalate the cascade");
        let state = d.snapshot_state().unwrap();
        assert!(
            !matches!(state.get("confirmer"), Some(serde::Value::Null)),
            "live confirmer must serialize its state"
        );
        let mut restored = Cascade::new(cascade_config("ddm", "optwin:w_max=500")).unwrap();
        restored.restore_state(&state).unwrap();
        assert!(restored.is_escalated(), "restore must wake the confirmer");
        assert_eq!(restored.escalations(), d.escalations());
        let rest = &stream[cut + 1..];
        assert_eq!(d.add_batch(rest), restored.add_batch(rest));

        // A dormant cascade round-trips its `null` confirmer.
        let fresh = Cascade::new(cascade_config("ddm", "optwin:w_max=500")).unwrap();
        let state = fresh.snapshot_state().unwrap();
        assert!(matches!(state.get("confirmer"), Some(serde::Value::Null)));
    }

    #[test]
    fn cascade_mem_footprint_counts_ring_and_live_confirmer() {
        let mut d = Cascade::new(cascade_config("ddm", "optwin:w_max=500")).unwrap();
        let guard_only = "ddm".parse::<DetectorSpec>().unwrap().build().unwrap();
        let dormant = d.mem_footprint();
        // The dormant footprint still carries the replay ring (satellite:
        // dormant confirmers are not zero-cost while the ring is resident).
        assert!(
            dormant >= guard_only.mem_footprint() + 256 * std::mem::size_of::<f64>(),
            "dormant footprint {dormant} must cover guard + ring"
        );
        let stream = drifting_stream(4_000, 2_000);
        for &x in &stream {
            d.add_element(x);
            if d.is_escalated() {
                break;
            }
        }
        assert!(d.is_escalated());
        assert!(
            d.mem_footprint() > dormant,
            "a live confirmer must grow the footprint"
        );
    }

    #[test]
    fn cascade_restore_rejects_bad_snapshots() {
        let mut d = Cascade::new(CascadeConfig::default()).unwrap();
        assert!(d.restore_state(&serde::Value::Null).is_err());

        let mut donor = Cascade::new(CascadeConfig {
            replay: 512,
            ..CascadeConfig::default()
        })
        .unwrap();
        let stream = drifting_stream(1_000, 400);
        donor.add_batch(&stream);
        let state = donor.snapshot_state().unwrap();
        // A smaller replay capacity rejects the oversized ring.
        let mut small = Cascade::new(CascadeConfig {
            replay: 16,
            ..CascadeConfig::default()
        })
        .unwrap();
        let err = small.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("replay ring"), "{err}");
    }

    #[test]
    fn ensemble_votes_k_of_n() {
        let mut d = Ensemble::new(EnsembleConfig::default()).unwrap();
        assert_eq!(d.name(), "ENSEMBLE");
        assert!(!d.supports_real_valued_input(), "ddm member is binary-only");
        let stream = drifting_stream(6_000, 3_000);
        let outcome = d.add_batch(&stream);
        assert!(outcome.has_drift(), "2-of-3 must confirm the jump");
        assert!(outcome.drift_indices[0] >= 3_000, "no false positive");

        let real = Ensemble::new(EnsembleConfig {
            vote: 1,
            members: vec!["adwin".parse().unwrap(), "kswin".parse().unwrap()],
            ..EnsembleConfig::default()
        })
        .unwrap();
        assert!(real.supports_real_valued_input());
    }

    #[test]
    fn ensemble_batch_matches_element_fold() {
        let stream = drifting_stream(4_000, 2_000);
        assert_batch_equivalence(
            || Ensemble::new(EnsembleConfig::default()).unwrap(),
            &stream,
        );
        assert_batch_equivalence(
            || {
                Ensemble::new(EnsembleConfig {
                    vote: 2,
                    members: vec![
                        "ddm".parse().unwrap(),
                        "stepd".parse().unwrap(),
                        "optwin:w_max=500".parse().unwrap(),
                        "ecdd".parse().unwrap(),
                    ],
                    ..EnsembleConfig::default()
                })
                .unwrap()
            },
            &stream,
        );
    }

    #[test]
    fn ensemble_snapshot_restore_resumes_identically() {
        let stream = drifting_stream(4_000, 2_000);
        assert_snapshot_equivalence(
            || Ensemble::new(EnsembleConfig::default()).unwrap(),
            &stream,
            &[0, 700, 2_050, 3_000, 4_000],
        );
    }

    #[test]
    fn ensemble_restore_rejects_bad_snapshots() {
        let mut d = Ensemble::new(EnsembleConfig::default()).unwrap();
        assert!(d.restore_state(&serde::Value::Null).is_err());
        let donor = Ensemble::new(EnsembleConfig {
            vote: 1,
            members: vec!["ddm".parse().unwrap()],
            ..EnsembleConfig::default()
        })
        .unwrap();
        let state = donor.snapshot_state().unwrap();
        let err = d.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("member states"), "{err}");
    }

    #[test]
    fn composites_nest_one_level() {
        // A cascade inside an ensemble (depth 2) builds and keeps the
        // batch/element contract.
        let stream = drifting_stream(3_000, 1_500);
        assert_batch_equivalence(
            || {
                Ensemble::new(EnsembleConfig {
                    vote: 1,
                    members: vec![
                        "cascade:guard=ddm,confirm=optwin:w_max=500"
                            .parse()
                            .unwrap(),
                        "ecdd".parse().unwrap(),
                    ],
                    ..EnsembleConfig::default()
                })
                .unwrap()
            },
            &stream,
        );
    }
}
