//! Page–Hinkley test (extension detector).
//!
//! The Page–Hinkley test is a sequential change-detection scheme for the mean
//! of a signal. It maintains the cumulative difference between the
//! observations and their running mean (minus a small tolerance `delta`) and
//! compares it against its historical minimum; when the gap exceeds a
//! threshold `lambda`, a change is flagged. It is not part of the paper's
//! baseline set but is a classic single-pass detector useful for ablations.

use optwin_core::snapshot::{check_version, field, float_field};
use optwin_core::{CoreError, DriftDetector, DriftStatus};

/// Serialization format version of [`PageHinkley`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Configuration for [`PageHinkley`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageHinkleyConfig {
    /// Minimum number of observations before detection starts.
    pub min_instances: u64,
    /// Magnitude tolerance: changes smaller than this are ignored.
    pub delta: f64,
    /// Detection threshold λ on the cumulative statistic.
    pub lambda: f64,
    /// Forgetting factor applied to the running mean (1.0 = plain mean).
    pub alpha: f64,
    /// Fraction of λ at which a warning is reported.
    pub warning_fraction: f64,
}

impl Default for PageHinkleyConfig {
    fn default() -> Self {
        Self {
            min_instances: 30,
            delta: 0.005,
            lambda: 50.0,
            alpha: 0.9999,
            warning_fraction: 0.5,
        }
    }
}

/// The Page–Hinkley drift detector (detects increases of the mean).
#[derive(Debug, Clone)]
pub struct PageHinkley {
    config: PageHinkleyConfig,
    n: u64,
    mean: f64,
    cumulative: f64,
    min_cumulative: f64,
    elements_seen: u64,
    drifts_detected: u64,
    last_status: DriftStatus,
}

impl PageHinkley {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive or `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(config: PageHinkleyConfig) -> Self {
        assert!(config.lambda > 0.0, "Page-Hinkley lambda must be positive");
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "Page-Hinkley alpha must be in (0, 1]"
        );
        Self {
            config,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            min_cumulative: f64::MAX,
            elements_seen: 0,
            drifts_detected: 0,
            last_status: DriftStatus::Stable,
        }
    }

    /// Creates a detector with the classic defaults (δ = 0.005, λ = 50).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(PageHinkleyConfig::default())
    }

    /// Current value of the cumulative test statistic minus its minimum.
    #[must_use]
    pub fn statistic(&self) -> f64 {
        if self.min_cumulative == f64::MAX {
            0.0
        } else {
            self.cumulative - self.min_cumulative
        }
    }

    fn restart(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.min_cumulative = f64::MAX;
    }
}

impl DriftDetector for PageHinkley {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.elements_seen += 1;
        self.n += 1;
        // Running (optionally fading) mean.
        self.mean += (value - self.mean) / self.n as f64;
        self.cumulative =
            self.config.alpha * self.cumulative + (value - self.mean - self.config.delta);
        self.min_cumulative = self.min_cumulative.min(self.cumulative);

        if self.n < self.config.min_instances {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        let stat = self.cumulative - self.min_cumulative;
        let status = if stat > self.config.lambda {
            self.drifts_detected += 1;
            self.restart();
            DriftStatus::Drift
        } else if stat > self.config.warning_fraction * self.config.lambda {
            DriftStatus::Warning
        } else {
            DriftStatus::Stable
        };
        self.last_status = status;
        status
    }

    fn reset(&mut self) {
        self.restart();
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "PageHinkley"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    /// Serializes the raw running mean, cumulative statistic and its minimum
    /// verbatim (the minimum starts at `f64::MAX`, which is finite and
    /// round-trips exactly).
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(optwin_core::SnapshotEncoding::Json)
    }

    /// Page–Hinkley's state is a handful of scalars — there is no sequence
    /// payload to compress, so both encodings produce the identical value
    /// tree.
    fn snapshot_state_encoded(
        &self,
        _encoding: optwin_core::SnapshotEncoding,
    ) -> Option<serde::Value> {
        use serde::Serialize as _;
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            ("n".to_string(), serde::Value::UInt(self.n)),
            ("mean".to_string(), serde::Value::Float(self.mean)),
            (
                "cumulative".to_string(),
                serde::Value::Float(self.cumulative),
            ),
            (
                "min_cumulative".to_string(),
                serde::Value::Float(self.min_cumulative),
            ),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        check_version(state, SNAPSHOT_VERSION, "PageHinkley")?;
        let n: u64 = field(state, "n")?;
        let finite = |name: &str, x: f64| {
            if x.is_finite() {
                Ok(())
            } else {
                Err(optwin_core::snapshot::invalid(format!(
                    "{name} ({x}) must be finite"
                )))
            }
        };
        let mean = float_field(state, "mean")?;
        finite("mean", mean)?;
        let cumulative = float_field(state, "cumulative")?;
        finite("cumulative", cumulative)?;
        let min_cumulative = float_field(state, "min_cumulative")?;
        finite("min_cumulative", min_cumulative)?;
        let elements_seen: u64 = field(state, "elements_seen")?;
        let drifts_detected: u64 = field(state, "drifts_detected")?;
        let last_status: DriftStatus = field(state, "last_status")?;

        self.n = n;
        self.mean = mean;
        self.cumulative = cumulative;
        self.min_cumulative = min_cumulative;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.last_status = last_status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{bernoulli, jitter};

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_bad_lambda() {
        let _ = PageHinkley::new(PageHinkleyConfig {
            lambda: 0.0,
            ..PageHinkleyConfig::default()
        });
    }

    #[test]
    fn stationary_stream_is_stable() {
        let mut d = PageHinkley::with_defaults();
        let mut drifts = 0;
        for i in 0..30_000u64 {
            if d.add_element(bernoulli(i, 0.2)) == DriftStatus::Drift {
                drifts += 1;
            }
        }
        assert!(drifts <= 1, "drifts = {drifts}");
    }

    #[test]
    fn mean_increase_detected() {
        let mut d = PageHinkley::with_defaults();
        let mut detected_at = None;
        for i in 0..6_000u64 {
            let base = if i < 3_000 { 0.1 } else { 0.5 };
            let x = (base + 0.1 * jitter(i)).clamp(0.0, 1.0);
            if d.add_element(x) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("Page-Hinkley must detect the mean increase");
        assert!(at >= 3_000);
        assert!(at < 3_400, "delay = {}", at - 3_000);
    }

    #[test]
    fn statistic_resets_after_drift() {
        let mut d = PageHinkley::with_defaults();
        for i in 0..6_000u64 {
            let base = if i < 3_000 { 0.1 } else { 0.5 };
            d.add_element((base + 0.1 * jitter(i)).clamp(0.0, 1.0));
        }
        assert!(d.drifts_detected() >= 1);
        // After the reset the statistic should be far from the threshold.
        assert!(d.statistic() < 50.0);
    }

    #[test]
    fn warning_zone_reported() {
        let mut d = PageHinkley::new(PageHinkleyConfig {
            lambda: 20.0,
            ..PageHinkleyConfig::default()
        });
        let mut saw_warning = false;
        for i in 0..6_000u64 {
            let base = if i < 3_000 { 0.1 } else { 0.5 };
            let status = d.add_element((base + 0.1 * jitter(i)).clamp(0.0, 1.0));
            if status == DriftStatus::Warning {
                saw_warning = true;
            }
            if status == DriftStatus::Drift {
                break;
            }
        }
        assert!(saw_warning, "warning zone should precede the drift");
    }

    #[test]
    fn metadata() {
        let d = PageHinkley::with_defaults();
        assert_eq!(d.name(), "PageHinkley");
        assert!(d.supports_real_valued_input());
        assert_eq!(d.statistic(), 0.0);
    }

    #[test]
    fn add_batch_matches_element_fold() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let base = if i < 4_000 { 0.1 } else { 0.5 };
                (base + 0.05 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        crate::test_util::assert_batch_equivalence(PageHinkley::with_defaults, &stream);
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..8_000u64)
            .map(|i| {
                let base = if i < 4_000 { 0.1 } else { 0.5 };
                (base + 0.05 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        crate::test_util::assert_snapshot_equivalence(
            PageHinkley::with_defaults,
            &stream,
            &[0, 11, 2_000, 4_100, 8_000],
        );
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = PageHinkley::with_defaults();
        assert!(d.restore_state(&serde::Value::Null).is_err());
        let mut donor = PageHinkley::with_defaults();
        for i in 0..200u64 {
            donor.add_element(bernoulli(i, 0.2));
        }
        let serde::Value::Object(mut fields) = donor.snapshot_state().unwrap() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "cumulative" {
                *v = serde::Value::Float(f64::NAN);
            }
        }
        let before = d.elements_seen();
        let err = d.restore_state(&serde::Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        assert_eq!(d.elements_seen(), before);
    }
}
