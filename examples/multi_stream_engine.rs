//! Multi-stream serving on the declarative engine API: one engine watching
//! hundreds of model error streams with **heterogeneous detectors** (a
//! different [`DetectorSpec`] per stream group), detections fanning out
//! through pluggable sinks, and a snapshot/restore round trip demonstrating
//! a **factory-less** mid-stream restart.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_stream_engine
//! ```
//!
//! Simulates a fleet of 256 deployed models, each producing a stream of
//! per-prediction errors. Each model is watched by the detector its team
//! picked — OPTWIN, ADWIN, KSWIN or Page–Hinkley, rotating by stream id —
//! registered purely from spec strings: no closures, no hand-built detector
//! instances. A handful of models degrade at different points in time. An
//! [`EngineBuilder`] spawns shard-owning worker threads; the main thread
//! plays the role of a network server, pushing interleaved
//! `(stream, value)` batches through a non-blocking [`EngineHandle`] while
//! the workers detect in parallel. Every drift is simultaneously:
//!
//! * counted live by a [`CallbackSink`] (the "alerting bus"),
//! * appended as JSON lines to a [`JsonLinesSink`] (the "audit log"),
//! * collected by a [`MemorySink`] for the summary below.
//!
//! Halfway through, the engine's per-shard load is dumped, its placement
//! rebalanced, and the engine snapshotted, torn down, and restored into
//! a brand-new engine **without registering a single stream or configuring
//! any factory** — the snapshot embeds each stream's
//! `{spec, state, shard}`, so the restarted process rebuilds all 256
//! heterogeneous detectors (and the tuned placement) from the JSON alone
//! and produces exactly the events the original would have. The restart
//! uses the **v4 compact binary** snapshot
//! ([`EngineHandle::snapshot_compact`]): detector windows travel as
//! bit-packed / fixed-point binary blobs instead of JSON number arrays,
//! and both layouts' sizes are printed side by side.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use optwin::engine::{
    CallbackSink, EngineBuilder, EngineHandle, EventSink, JsonLinesSink, MemorySink,
};
use optwin::{DetectorSpec, DriftEvent, RebalancePolicy};

const N_STREAMS: u64 = 256;
const ELEMENTS_PER_STREAM: usize = 10_000;
const BATCH_PER_STREAM: usize = 250;

/// Deterministic jitter in [-0.5, 0.5).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Streams divisible by 37 degrade at an id-dependent point; the rest stay
/// healthy.
fn element(stream: u64, i: usize) -> f64 {
    let degraded = stream.is_multiple_of(37) && i >= 4_000 + (stream as usize % 11) * 300;
    let base = if degraded { 0.42 } else { 0.07 };
    (base + 0.05 * jitter(stream << 32 | i as u64)).clamp(0.0, 1.0)
}

/// The heterogeneous fleet: each stream group runs the detector its team
/// picked, written exactly as it would appear in a config file. All four
/// accept real-valued losses; the OPTWIN group shares one cut table through
/// the process-wide registry.
fn spec_of(stream: u64) -> DetectorSpec {
    let text = match stream % 4 {
        // High robustness: with hundreds of streams checked at every
        // element, only shifts of at least one historical standard
        // deviation are worth paging anyone about.
        0 => "optwin:rho=1.0,w_max=2000",
        1 => "adwin:delta=0.002",
        2 => "kswin:window_size=300,stat_size=30,alpha=0.0001",
        _ => "page_hinkley:lambda=50,delta=0.005",
    };
    text.parse().expect("valid spec string")
}

/// Submits the half-open element range `[from, to)` of every stream in
/// interleaved batches.
fn feed(handle: &EngineHandle, from: usize, to: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut records = Vec::with_capacity(N_STREAMS as usize * BATCH_PER_STREAM);
    let mut position = from;
    while position < to {
        let end = (position + BATCH_PER_STREAM).min(to);
        records.clear();
        for stream in 0..N_STREAMS {
            for i in position..end {
                records.push((stream, element(stream, i)));
            }
        }
        // Non-blocking: the shard workers chew on this while the next batch
        // is being staged. Backpressure kicks in at the queue bound.
        handle.submit(&records)?;
        position = end;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = optwin::EngineConfig::default().shards;
    println!(
        "engine: {shards} shards, {N_STREAMS} streams x {ELEMENTS_PER_STREAM} elements \
         ({} records total), heterogeneous detectors per stream",
        N_STREAMS as usize * ELEMENTS_PER_STREAM
    );

    let audit_path = std::env::temp_dir().join("optwin_multi_stream_events.jsonl");
    let live_alerts = Arc::new(AtomicU64::new(0));

    let base_engine = |sink: &Arc<MemorySink>, audit: JsonLinesSink| -> EngineBuilder {
        let alerts = Arc::clone(&live_alerts);
        EngineBuilder::new()
            .shards(shards)
            .queue_capacity(64 * 1_024)
            .sink(Arc::clone(sink) as Arc<dyn EventSink>)
            .sink(Arc::new(audit))
            .sink(Arc::new(CallbackSink::new(move |_event: &DriftEvent| {
                alerts.fetch_add(1, Ordering::Relaxed);
            })))
    };

    // ---- Phase 1: the fleet is assembled declaratively — one spec per
    // stream, no closures — then fed the first half of every stream,
    // snapshotted and torn down.
    let first_half = Arc::new(MemorySink::new());
    let mut builder = base_engine(&first_half, JsonLinesSink::create(&audit_path)?);
    for stream in 0..N_STREAMS {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let handle = builder.build()?;
    // Live introspection: ask the engine what stream 2 is running.
    println!(
        "stream 2 runs: {}",
        handle.stream_spec(2)?.expect("registered by spec")
    );

    let started = Instant::now();
    feed(&handle, 0, ELEMENTS_PER_STREAM / 2)?;
    handle.flush()?;
    let phase1 = started.elapsed();

    // Load observability + load-aware rebalancing: the flush barrier is the
    // natural point to inspect per-shard load and re-pack the streams.
    // (With uniform traffic the modulo default is already near-balanced, so
    // the report usually shows few or no moves — the interesting numbers
    // come from skewed fleets; see the engine_throughput Zipf tier.)
    print!("per-shard load after phase 1:\n{}", handle.stats()?);
    let report = handle.rebalance(RebalancePolicy::Records)?;
    println!(
        "{report}; {} streams now rerouted",
        handle.rerouted_streams()
    );

    // Snapshot the fleet in both wire layouts: v3 (JSON number arrays) for
    // the size comparison, v4 (compact binary blobs) for the actual restart.
    let v3_size = handle.snapshot()?.to_json().len();
    let snapshot = handle.snapshot_compact()?;
    handle.shutdown()?;
    assert!(
        snapshot.is_self_describing(),
        "every stream was spec-registered"
    );
    assert!(
        snapshot.records_placement(),
        "v3+ snapshots capture the (rebalanced) placement"
    );
    assert_eq!(snapshot.version, 4, "snapshot_compact writes wire v4");
    let snapshot_json = snapshot.to_json();
    println!(
        "phase 1: {} elements in {phase1:.2?}; self-describing snapshot captured {} streams \
         (v3 JSON: {} KiB, v4 binary: {} KiB — {:.0}% of v3)",
        N_STREAMS as usize * ELEMENTS_PER_STREAM / 2,
        snapshot.stream_count(),
        v3_size / 1024,
        snapshot_json.len() / 1024,
        snapshot_json.len() as f64 / v3_size as f64 * 100.0,
    );

    // ---- Phase 2: a "restarted process" restores the snapshot from its
    // JSON form alone — no factory, no register calls, no knowledge of
    // which stream ran which detector. The specs embedded in the snapshot
    // rebuild the whole heterogeneous fleet.
    let snapshot = optwin::engine::EngineSnapshot::from_json(&snapshot_json)?;
    let second_half = Arc::new(MemorySink::new());
    let restored = base_engine(
        &second_half,
        JsonLinesSink::new(std::io::BufWriter::new(
            std::fs::OpenOptions::new().append(true).open(&audit_path)?,
        )),
    )
    .restore(snapshot)
    .build()?;

    let resumed = Instant::now();
    feed(&restored, ELEMENTS_PER_STREAM / 2, ELEMENTS_PER_STREAM)?;
    let stats = restored.stats()?;
    restored.shutdown()?;
    let phase2 = resumed.elapsed();

    println!(
        "phase 2: factory-less restore, engine now reports {} elements total \
         across {} streams ({phase2:.2?}); {} rerouted placements survived the restart",
        stats.elements,
        stats.streams,
        restored.rerouted_streams(),
    );
    let ingest = phase1 + phase2;
    println!(
        "ingest: {} elements in {ingest:.2?} ({:.1} M elements/s), \
         {} live alerts via CallbackSink, audit log at {}",
        stats.elements,
        stats.elements as f64 / ingest.as_secs_f64() / 1e6,
        live_alerts.load(Ordering::Relaxed),
        audit_path.display(),
    );

    let mut events = first_half.drain();
    events.extend(second_half.drain());
    events.sort_unstable_by_key(|e| (e.stream, e.seq));
    println!("drift events: {}", events.len());
    for event in &events {
        println!(
            "  model {:>3} ({:>12}) drifted at element {:>5}",
            event.stream,
            spec_of(event.stream).id(),
            event.seq
        );
    }

    // The healthy models should be silent and the degraded ones caught —
    // across the restart boundary, whatever detector each one runs.
    let degraded: Vec<u64> = (0..N_STREAMS).filter(|s| s % 37 == 0).collect();
    let caught: Vec<u64> = degraded
        .iter()
        .copied()
        .filter(|s| events.iter().any(|e| e.stream == *s))
        .collect();
    println!(
        "degraded models: {:?}; flagged by the engine: {:?}",
        degraded, caught
    );
    Ok(())
}
