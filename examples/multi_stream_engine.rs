//! Multi-stream serving: one engine watching hundreds of model error
//! streams at once.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_stream_engine
//! ```
//!
//! Simulates a fleet of 256 deployed models, each producing a stream of
//! per-prediction errors. A handful of them degrade at different points in
//! time. One sharded [`DriftEngine`] ingests interleaved `(stream, value)`
//! batches, fans the work across CPU cores, and emits exactly which model
//! drifted at which element — the serving-scale shape of the paper's
//! single-detector loop.

use std::time::Instant;

use optwin::engine::{DriftEngine, EngineConfig};
use optwin::{DriftDetector, Optwin, OptwinConfig};

const N_STREAMS: u64 = 256;
const ELEMENTS_PER_STREAM: usize = 10_000;
const BATCH_PER_STREAM: usize = 250;

/// Deterministic jitter in [-0.5, 0.5).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Streams divisible by 37 degrade at an id-dependent point; the rest stay
/// healthy.
fn element(stream: u64, i: usize) -> f64 {
    let degraded = stream.is_multiple_of(37) && i >= 4_000 + (stream as usize % 11) * 300;
    let base = if degraded { 0.42 } else { 0.07 };
    (base + 0.05 * jitter(stream << 32 | i as u64)).clamp(0.0, 1.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = EngineConfig::default().shards;
    println!(
        "engine: {shards} shards, {N_STREAMS} streams x {ELEMENTS_PER_STREAM} elements \
         ({} records total)",
        N_STREAMS as usize * ELEMENTS_PER_STREAM
    );

    // Every stream gets its own OPTWIN detector; the cut table for this
    // configuration is computed once and shared by all 256 of them through
    // the process-wide registry.
    let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(shards), |_stream| {
        let config = OptwinConfig::builder()
            // High robustness: with hundreds of streams checked at every
            // element, only shifts of at least one historical standard
            // deviation are worth paging anyone about.
            .robustness(1.0)
            .max_window(2_000)
            .build()
            .expect("valid config");
        Box::new(Optwin::with_shared_table(config).expect("valid config"))
            as Box<dyn DriftDetector + Send>
    });

    let started = Instant::now();
    let mut events = Vec::new();
    let mut records = Vec::with_capacity(N_STREAMS as usize * BATCH_PER_STREAM);
    let mut position = 0usize;
    while position < ELEMENTS_PER_STREAM {
        let end = (position + BATCH_PER_STREAM).min(ELEMENTS_PER_STREAM);
        records.clear();
        for stream in 0..N_STREAMS {
            for i in position..end {
                records.push((stream, element(stream, i)));
            }
        }
        events.extend(engine.ingest_batch(&records)?);
        position = end;
    }
    let elapsed = started.elapsed();

    let total = engine.elements_ingested();
    println!(
        "ingested {total} elements in {:.2?} ({:.1} M elements/s)",
        elapsed,
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("drift events: {}", events.len());
    for event in &events {
        let snapshot = engine.stream_snapshot(event.stream).expect("registered");
        println!(
            "  model {:>3} drifted at element {:>5} ({} drifts total on this stream)",
            event.stream, event.seq, snapshot.drifts
        );
    }

    // The healthy models should be silent and the degraded ones caught.
    let degraded: Vec<u64> = (0..N_STREAMS).filter(|s| s % 37 == 0).collect();
    let caught: Vec<u64> = degraded
        .iter()
        .copied()
        .filter(|s| events.iter().any(|e| e.stream == *s))
        .collect();
    println!(
        "degraded models: {:?}; flagged by the engine: {:?}",
        degraded, caught
    );
    Ok(())
}
