//! Detector shoot-out: every detector in the paper's line-up on the same
//! drifting error stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example detector_shootout
//! ```
//!
//! Generates one "sudden binary drift" stream (four drifts), runs all eight
//! detectors of the paper's Table 1 line-up over it, and prints a compact
//! comparison — a miniature, single-run version of the `table1` binary.

use optwin::eval::experiment::{run_detector_on_sequence, Table1Experiment};
use optwin::{DetectorFactory, DetectorKind};

fn main() {
    let experiment = Table1Experiment::SuddenBinary;
    let (errors, schedule) = experiment.build_error_sequence(2_024, 25_000);
    println!(
        "{} — {} elements, true drifts at {:?}",
        experiment.label(),
        errors.len(),
        schedule.positions()
    );
    println!();
    println!(
        "{:<18} {:>4} {:>4} {:>4} {:>8} {:>8} {:>8} {:>12}",
        "Detector", "TP", "FP", "FN", "P", "R", "F1", "mean delay"
    );

    let factory = DetectorFactory::with_optwin_window(5_000);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        let run = run_detector_on_sequence(detector.as_mut(), &errors, &schedule);
        let delay = run
            .outcome
            .mean_delay
            .map_or_else(|| "-".to_string(), |d| format!("{d:.1}"));
        println!(
            "{:<18} {:>4} {:>4} {:>4} {:>7.0}% {:>7.0}% {:>7.0}% {:>12}",
            kind.label(),
            run.outcome.true_positives,
            run.outcome.false_positives,
            run.outcome.false_negatives,
            run.outcome.precision() * 100.0,
            run.outcome.recall() * 100.0,
            run.outcome.f1() * 100.0,
            delay,
        );
    }
}
