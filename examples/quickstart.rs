//! Quickstart: detect a concept drift in a stream of learner errors.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example simulates an online learner whose error rate jumps from 5 % to
//! 35 % halfway through the stream, feeds the binary errors to OPTWIN and to
//! ADWIN, and prints where each detector fires.

use optwin::stream::{DriftKind, DriftSchedule, ErrorStream, ErrorStreamConfig};
use optwin::{Adwin, DriftDetector, DriftStatus, Optwin, OptwinConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20 000-element binary error stream with one sudden drift at 10 000.
    let schedule = DriftSchedule::new(vec![10_000], 1, 20_000);
    let errors = ErrorStream::new(
        ErrorStreamConfig::binary(DriftKind::Sudden, schedule.clone()),
        42,
    )
    .collect_all();

    // OPTWIN with the paper's defaults, except a smaller window bound so the
    // example stays snappy.
    let mut optwin = Optwin::new(
        OptwinConfig::builder()
            .confidence(0.99)
            .robustness(0.5)
            .max_window(5_000)
            .build()?,
    )?;
    let mut adwin = Adwin::with_defaults();

    let mut optwin_hits = Vec::new();
    let mut adwin_hits = Vec::new();
    for (i, &e) in errors.iter().enumerate() {
        if optwin.add_element(e) == DriftStatus::Drift {
            optwin_hits.push(i);
        }
        if adwin.add_element(e) == DriftStatus::Drift {
            adwin_hits.push(i);
        }
    }

    println!("true drift position : {:?}", schedule.positions());
    println!("OPTWIN detections   : {optwin_hits:?}");
    println!("ADWIN detections    : {adwin_hits:?}");

    match optwin_hits.first() {
        Some(&at) if at >= 10_000 => {
            println!(
                "OPTWIN detected the drift with a delay of {} elements",
                at - 10_000
            );
        }
        Some(&at) => println!("OPTWIN produced a false positive at {at}"),
        None => println!("OPTWIN missed the drift"),
    }
    Ok(())
}
