//! Spam-filter adaptation — the motivating use-case from the paper's
//! introduction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example spam_filter
//! ```
//!
//! A Naive-Bayes "spam filter" is trained prequentially on a stream of
//! feature vectors describing messages. Every 15 000 messages the spammers
//! change strategy (the labelling concept switches), so a static filter
//! degrades. The example compares three set-ups:
//!
//! 1. no adaptation at all,
//! 2. OPTWIN-triggered retraining,
//! 3. ADWIN-triggered retraining,
//!
//! and prints the prequential accuracy plus the number of retrainings of
//! each, illustrating the paper's point that fewer false positives mean
//! less wasted retraining.

use optwin::learners::AdaptiveLearner;
use optwin::stream::drift::MultiConceptStream;
use optwin::stream::generators::{Stagger, StaggerConcept};
use optwin::{
    Adwin, DriftSchedule, InstanceStream, NaiveBayes, OnlineLearner, Optwin, OptwinConfig,
};

/// Builds the "mailbox" stream: STAGGER concepts stand in for spammer
/// strategies; every 15 000 messages the strategy changes suddenly.
fn mailbox_stream(seed: u64) -> MultiConceptStream {
    let schedule = DriftSchedule::every(15_000, 60_000, 1);
    let concepts: Vec<Box<dyn InstanceStream + Send>> = (0..4)
        .map(|k| {
            Box::new(Stagger::new(StaggerConcept::cycle(k), seed + k as u64))
                as Box<dyn InstanceStream + Send>
        })
        .collect();
    MultiConceptStream::new(concepts, schedule, seed + 100)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 60_000;

    // 1. Static filter: never retrained.
    let mut stream = mailbox_stream(7);
    let mut static_filter = NaiveBayes::new(&stream.schema(), stream.n_classes());
    let mut correct = 0usize;
    for _ in 0..n {
        let msg = stream.next_instance();
        if static_filter.predict(&msg) == msg.label {
            correct += 1;
        }
        static_filter.learn(&msg);
    }
    let static_acc = correct as f64 / n as f64;

    // 2. OPTWIN-adapted filter.
    let mut stream = mailbox_stream(7);
    let optwin = Optwin::new(
        OptwinConfig::builder()
            .robustness(0.5)
            .max_window(5_000)
            .build()?,
    )?;
    let mut optwin_filter = AdaptiveLearner::new(
        NaiveBayes::new(&stream.schema(), stream.n_classes()),
        optwin,
    );
    let optwin_report = optwin_filter.run(&mut stream, n);

    // 3. ADWIN-adapted filter.
    let mut stream = mailbox_stream(7);
    let mut adwin_filter = AdaptiveLearner::new(
        NaiveBayes::new(&stream.schema(), stream.n_classes()),
        Adwin::with_defaults(),
    );
    let adwin_report = adwin_filter.run(&mut stream, n);

    println!("spam-filter adaptation over {n} messages, 3 spammer strategy changes");
    println!("{:<22} {:>10} {:>14}", "set-up", "accuracy", "retrainings");
    println!(
        "{:<22} {:>9.2}% {:>14}",
        "no adaptation",
        static_acc * 100.0,
        0
    );
    println!(
        "{:<22} {:>9.2}% {:>14}",
        "OPTWIN-adapted",
        optwin_report.accuracy * 100.0,
        optwin_report.detections.len()
    );
    println!(
        "{:<22} {:>9.2}% {:>14}",
        "ADWIN-adapted",
        adwin_report.accuracy * 100.0,
        adwin_report.detections.len()
    );
    println!();
    println!("OPTWIN retrained at: {:?}", optwin_report.detections);
    println!("ADWIN  retrained at: {:?}", adwin_report.detections);
    Ok(())
}
