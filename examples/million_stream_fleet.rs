//! A **million-stream** fleet on one machine via the hibernation tier.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example million_stream_fleet
//! # or scaled down for a quick look:
//! OPTWIN_FLEET_STREAMS=50000 cargo run --release --example million_stream_fleet
//! ```
//!
//! Production fleets are Zipf-shaped: a small hot set of streams produces
//! records constantly while the overwhelming majority sit idle for hours.
//! Held fully live, a million registered streams would need tens of GiB of
//! detector state (OPTWIN alone buffers its whole window); with
//! [`EngineBuilder::hibernation`] the shard workers compress every stream
//! that stays idle across flush barriers down to its compact binary state
//! blob — a few hundred bytes — and rebuild the detector **bit-exactly**
//! the moment its next record arrives. The fleet below:
//!
//! * registers 1 000 000 streams across all eight detector kinds,
//! * feeds them in waves (each wave hibernates behind the next, so peak
//!   resident memory is one wave of live detectors, not the whole fleet),
//! * keeps a 1 024-stream hot set live throughout,
//! * prints the engine's memory accounting ([`EngineStats`] carries
//!   resident/hibernated bytes per shard),
//! * wakes one cold stream with a single record — transparent rehydration,
//! * snapshots the sleeping fleet and restores it **without waking it**:
//!   hibernated streams embed their blob verbatim in the v4 snapshot, and a
//!   hibernating builder re-creates them still asleep,
//! * attaches **continuous durability** (wire v5) to a sub-fleet: delta
//!   checkpoints plus a write-ahead log, then kills the fleet without a
//!   final checkpoint and recovers it from disk — base → overlays → WAL
//!   tail — with every record accounted for.

use std::time::Instant;

use optwin::engine::{EngineBuilder, EngineHandle, EngineSnapshot};
use optwin::{CheckpointPolicy, DetectorSpec, HibernationPolicy};

/// The hot set: streams fed on every wave, hence resident.
const HOT: u64 = 1_024;
/// Streams per hibernation wave — the peak count of live cold detectors.
const WAVE: u64 = 8_192;
/// Records each cold stream sees before falling asleep.
const ELEMENTS_PER_STREAM: usize = 24;

fn n_streams() -> u64 {
    std::env::var("OPTWIN_FLEET_STREAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 2 * HOT)
        .unwrap_or(1_000_000)
}

/// All eight shipped kinds, tiled round-robin across the fleet.
fn spec_of(stream: u64) -> DetectorSpec {
    let kinds = DetectorSpec::all_defaults();
    kinds[(stream % kinds.len() as u64) as usize].clone()
}

/// SplitMix64 jitter in [0, 1).
fn unit(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Binary error indicators — the paper's production input; every kind
/// accepts them.
fn element(stream: u64, i: usize) -> f64 {
    f64::from(unit(stream.wrapping_mul(0x00C0_FFEE) ^ i as u64) < 0.07)
}

/// One wave: a batch of records for the given streams, then two flush
/// barriers — the first resets idleness for the streams that ingested, the
/// second finds them idle and compresses them (`cold_after_flushes = 1`).
fn feed_wave(
    handle: &EngineHandle,
    streams: impl Iterator<Item = u64> + Clone,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut records = Vec::new();
    for i in 0..ELEMENTS_PER_STREAM {
        for stream in streams.clone() {
            records.push((stream, element(stream, i)));
        }
    }
    handle.submit(&records)?;
    handle.flush()?;
    handle.flush()?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let streams = n_streams();
    println!(
        "registering {streams} streams across {} detector kinds \
         (hibernation: cold after 1 idle flush)...",
        DetectorSpec::all_defaults().len()
    );

    let started = Instant::now();
    let mut builder = EngineBuilder::new()
        .shards(8)
        .queue_capacity(512 * 1_024)
        .hibernation(HibernationPolicy::cold_after_flushes(1));
    for stream in 0..streams {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let handle = builder.build()?;
    println!("registered in {:.2?}", started.elapsed());

    // Feed the fleet in waves: the hot set rides along in every wave and
    // stays warm; each cold wave hibernates while the next one is live, so
    // resident memory never approaches the all-live footprint.
    let feeding = Instant::now();
    let mut wave_start = HOT;
    while wave_start < streams {
        let wave_end = (wave_start + WAVE).min(streams);
        feed_wave(&handle, (0..HOT).chain(wave_start..wave_end))?;
        wave_start = wave_end;
    }
    let stats = handle.stats()?;
    println!(
        "fed {} records in {:.2?}; {} of {} streams hibernated",
        stats.elements,
        feeding.elapsed(),
        stats.hibernated_streams(),
        stats.streams,
    );
    let hibernated_per_stream = stats.hibernated_bytes() / stats.hibernated_streams().max(1);
    println!(
        "memory: {} MiB resident total, {hibernated_per_stream} B per hibernated stream \
         ({} MiB of compressed blobs)\n{stats}",
        stats.resident_bytes() / (1024 * 1024),
        stats.hibernated_bytes() / (1024 * 1024),
    );

    // Transparent rehydration: one record to a cold stream rebuilds its
    // detector from the blob — bit-exact with one that never slept — and
    // the engine counts the wake.
    let cold = streams - 1;
    handle.submit(&[(cold, 1.0)])?;
    handle.flush()?;
    let stats = handle.stats()?;
    println!(
        "woke stream {cold} with one record: {} rehydrations, \
         {} streams hibernated",
        stats.rehydrations(),
        stats.hibernated_streams(),
    );

    // Persistence without waking: the sleeping fleet snapshots its blobs
    // verbatim (still wire v4) and a hibernating builder restores every
    // sleeper still asleep — no detector is materialized until its next
    // record.
    let snapshotting = Instant::now();
    let snapshot = handle.snapshot_compact()?;
    handle.shutdown()?;
    let json = snapshot.to_json();
    println!(
        "snapshotted the sleeping fleet in {:.2?}: wire v{}, {} MiB JSON, \
         {} hibernated entries",
        snapshotting.elapsed(),
        snapshot.version,
        json.len() / (1024 * 1024),
        snapshot.streams.iter().filter(|s| s.hibernated).count(),
    );

    let restoring = Instant::now();
    let restored = EngineBuilder::new()
        .shards(8)
        .hibernation(HibernationPolicy::cold_after_flushes(1))
        .restore(EngineSnapshot::from_json(&json)?)
        .build()?;
    let stats = restored.stats()?;
    println!(
        "restored in {:.2?}: {} streams, {} still asleep, {} MiB resident",
        restoring.elapsed(),
        stats.streams,
        stats.hibernated_streams(),
        stats.resident_bytes() / (1024 * 1024),
    );
    restored.shutdown()?;

    // Continuous durability on a scaled sub-fleet: every flush barrier
    // emits a delta overlay with only the streams that changed, and every
    // ingested batch hits the write-ahead log first. We then "crash" the
    // fleet — stop it without taking a final checkpoint, stranding the last
    // batches in the WAL tail — and recover from the directory alone.
    let durable_streams = 2 * HOT;
    let checkpoint_dir = std::env::temp_dir().join(format!(
        "optwin-million-stream-checkpoint-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&checkpoint_dir);
    println!(
        "\nattaching durability to a {durable_streams}-stream sub-fleet \
         (checkpoints in {})...",
        checkpoint_dir.display()
    );
    let mut builder = EngineBuilder::new()
        .shards(4)
        .checkpoint(&checkpoint_dir, CheckpointPolicy::every_flushes(1));
    for stream in 0..durable_streams {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let durable = builder.build()?;
    for _ in 0..4 {
        feed_wave(&durable, 0..durable_streams)?;
    }
    let report = durable.checkpoint()?;
    println!("last checkpoint: {report}");

    // The crash window: records the WAL holds but no checkpoint covers.
    let tail: Vec<(u64, f64)> = (0..durable_streams)
        .map(|stream| (stream, element(stream, usize::MAX / 2)))
        .collect();
    durable.submit(&tail)?;
    let before = durable.stats()?;
    durable.shutdown()?; // no final checkpoint — the tail lives only in the WAL

    let recovering = Instant::now();
    let recovered = EngineBuilder::new()
        .shards(4)
        .recover_from_dir(&checkpoint_dir)?
        .build()?;
    let stats = recovered.stats()?;
    println!(
        "recovered in {:.2?}: {} of {} records survived the crash \
         (base + {} delta overlays + WAL tail)",
        recovering.elapsed(),
        stats.elements,
        before.elements,
        report.generation,
    );
    assert_eq!(stats.elements, before.elements, "no record may be lost");
    recovered.shutdown()?;
    let _ = std::fs::remove_dir_all(&checkpoint_dir);
    Ok(())
}
