//! Neural-network loss monitoring — the Figure 5 scenario as an example.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example nn_loss_monitoring
//! ```
//!
//! A small MLP is pre-trained on a synthetic 10-class task; the stream then
//! swaps the labels of two classes every 20 % of its length. OPTWIN watches
//! the per-batch loss and triggers fine-tuning whenever it fires. The example
//! prints the drift positions, the detections and the retraining cost.

use optwin::eval::nn_pipeline::{run_nn_pipeline, NnPipelineConfig};
use optwin::{Adwin, Optwin, OptwinConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NnPipelineConfig {
        total_batches: 6_000,
        pretrain_batches: 800,
        fine_tune_batches: 200,
        ..NnPipelineConfig::default()
    };

    println!(
        "streaming {} batches of {} instances, label swap every {} batches",
        config.total_batches,
        config.batch_size,
        config.total_batches / (config.n_drifts + 1)
    );

    let mut optwin = Optwin::new(
        OptwinConfig::builder()
            .robustness(0.5)
            .max_window(3_000)
            .build()?,
    )?;
    let optwin_run = run_nn_pipeline(&config, &mut optwin);

    let mut adwin = Adwin::with_defaults();
    let adwin_run = run_nn_pipeline(&config, &mut adwin);

    for run in [&optwin_run, &adwin_run] {
        println!();
        println!("{}", run.detector);
        println!("  detections           : {:?}", run.detections);
        println!(
            "  TP / FP / FN         : {} / {} / {}",
            run.outcome.true_positives, run.outcome.false_positives, run.outcome.false_negatives
        );
        println!("  fine-tuning batches  : {}", run.fine_tune_iterations);
        println!("  pipeline wall time   : {:.2} s", run.wall_seconds);
    }

    let saved = adwin_run.fine_tune_iterations as i64 - optwin_run.fine_tune_iterations as i64;
    println!();
    println!(
        "OPTWIN triggered {saved} fewer fine-tuning batches than ADWIN on this run \
         (negative means more)."
    );
    Ok(())
}
