//! End-to-end tests of the sharded multi-stream engine, run through the
//! public facade exactly as a downstream user would.
//!
//! The headline test drives the acceptance workload for the batched
//! ingestion refactor: a **1 M-element, 64-stream** mixed workload (all 8
//! detector kinds of the paper's line-up) through a `DriftEngine` with ≥ 4
//! shards, verified byte-identical to per-element scalar ingestion.

use optwin::{
    DetectorFactory, DetectorKind, DriftDetector, DriftEngine, DriftStatus, EngineConfig,
};

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

const N_STREAMS: u64 = 64;
const ELEMENTS_PER_STREAM: usize = 15_625; // 64 × 15 625 = 1 000 000
const SHARDS: usize = 8;

/// The detector kind assigned to a stream: the full 8-kind paper line-up,
/// tiled over the streams.
fn kind_of(stream: u64) -> DetectorKind {
    DetectorKind::paper_lineup()[(stream % 8) as usize]
}

/// The `i`-th element of a stream: every stream degrades at its own drift
/// point; binary-only detectors get Bernoulli indicators, the rest get
/// real-valued losses.
fn element(stream: u64, i: usize) -> f64 {
    let drift_at = ELEMENTS_PER_STREAM / 2 + (stream as usize * 37) % 2_000;
    let p = if i < drift_at { 0.06 } else { 0.55 };
    let u = jitter(stream.wrapping_mul(0x9E37_79B9) ^ i as u64) + 0.5;
    if kind_of(stream).binary_only() {
        f64::from(u < p)
    } else {
        (p + 0.4 * (u - 0.5)).clamp(0.0, 1.0)
    }
}

/// Builds the paper line-up detector for a stream, with a small OPTWIN
/// window / KSWIN buffer so the million-element run stays fast in debug
/// builds.
fn build_detector(stream: u64) -> Box<dyn DriftDetector + Send> {
    match kind_of(stream) {
        DetectorKind::Kswin => Box::new(optwin::baselines::Kswin::new(
            optwin::baselines::KswinConfig {
                window_size: 120,
                stat_size: 25,
                alpha: 1e-4,
            },
        )),
        kind => DetectorFactory::with_optwin_window(600).build(kind),
    }
}

/// The acceptance workload: 1 M elements over 64 streams on an 8-shard
/// engine, compared event-for-event against scalar per-element ingestion of
/// every stream.
#[test]
fn one_million_elements_across_64_streams_match_scalar_ingestion() {
    let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(SHARDS), build_detector);
    assert!(engine.num_shards() >= 4);

    // Ingest in interleaved batches of 8 192 records (128 per stream).
    let per_stream_chunk = 128usize;
    let mut records = Vec::with_capacity(per_stream_chunk * N_STREAMS as usize);
    let mut engine_events = Vec::new();
    let mut start = 0usize;
    while start < ELEMENTS_PER_STREAM {
        let end = (start + per_stream_chunk).min(ELEMENTS_PER_STREAM);
        records.clear();
        for stream in 0..N_STREAMS {
            for i in start..end {
                records.push((stream, element(stream, i)));
            }
        }
        engine_events.extend(
            engine
                .ingest_batch(&records)
                .expect("factory-backed engine"),
        );
        start = end;
    }

    assert_eq!(engine.stream_count(), N_STREAMS as usize);
    assert_eq!(engine.elements_ingested(), 1_000_000);

    // Scalar reference: per-element ingestion, stream by stream.
    let mut expected = Vec::new();
    for stream in 0..N_STREAMS {
        let mut detector = build_detector(stream);
        for i in 0..ELEMENTS_PER_STREAM {
            if detector.add_element(element(stream, i)) == DriftStatus::Drift {
                expected.push((stream, i as u64));
            }
        }
    }

    // Events arrive in batch-time order (sorted within each batch); compare
    // against the scalar reference as globally ordered sets.
    let mut got: Vec<(u64, u64)> = engine_events.iter().map(|e| (e.stream, e.seq)).collect();
    got.sort_unstable();
    let mut expected_sorted = expected.clone();
    expected_sorted.sort_unstable();
    assert_eq!(
        got, expected_sorted,
        "engine events must match scalar ingestion exactly"
    );

    // Every stream was injected with one genuine drift; the line-up detects
    // the vast majority of them.
    let streams_with_detection: std::collections::HashSet<u64> =
        engine_events.iter().map(|e| e.stream).collect();
    assert!(
        streams_with_detection.len() >= 56,
        "only {} of 64 streams saw a detection",
        streams_with_detection.len()
    );
    assert_eq!(engine.drifts_detected(), engine_events.len() as u64);
}

/// Shard count must never change results — only wall-clock time.
#[test]
fn results_are_invariant_under_shard_count() {
    let run = |shards: usize| {
        let mut engine =
            DriftEngine::with_factory(EngineConfig::with_shards(shards), build_detector);
        let mut events = Vec::new();
        let mut records = Vec::new();
        for chunk_start in (0..4_000usize).step_by(500) {
            records.clear();
            for stream in 0..16u64 {
                for i in chunk_start..chunk_start + 500 {
                    records.push((stream, element(stream, i)));
                }
            }
            events.extend(engine.ingest_batch(&records).unwrap());
        }
        events
    };
    let single = run(1);
    let four = run(4);
    let sixteen = run(16);
    assert_eq!(single, four);
    assert_eq!(four, sixteen);
}

/// Per-stream snapshots expose the counters the serving layer needs.
#[test]
fn stream_snapshots_report_lifetime_counters() {
    let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(4), build_detector);
    let values: Vec<f64> = (0..2_000).map(|i| element(2, i)).collect();
    engine.ingest_stream(2, &values).unwrap();
    let snap = engine.stream_snapshot(2).expect("registered by factory");
    assert_eq!(snap.stream, 2);
    assert_eq!(snap.elements, 2_000);
    assert!(snap.detector_seconds >= 0.0);
    assert_eq!(snap.detector, "EDDM");
}
