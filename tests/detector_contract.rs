//! Contract tests every detector in the workspace must satisfy, run through
//! the public facade (`optwin` crate) exactly as a downstream user would.

use optwin::{DetectorFactory, DetectorKind, DriftStatus};

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

fn bernoulli(i: u64, p: f64) -> f64 {
    if jitter(i) + 0.5 < p {
        1.0
    } else {
        0.0
    }
}

/// Every detector must eventually detect a massive error-rate increase.
#[test]
fn all_detectors_catch_a_massive_shift() {
    let mut factory = DetectorFactory::with_optwin_window(2_000);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        let mut detected = false;
        for i in 0..30_000u64 {
            let p = if i < 15_000 { 0.05 } else { 0.70 };
            if detector.add_element(bernoulli(i, p)) == DriftStatus::Drift && i >= 15_000 {
                detected = true;
                break;
            }
        }
        assert!(detected, "{} missed a 5% -> 70% error-rate jump", kind.label());
    }
}

/// Counters must be monotone and reset() must not clear the lifetime
/// counters (they describe the detector's history, not its window).
#[test]
fn counters_and_reset_contract() {
    let mut factory = DetectorFactory::with_optwin_window(500);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        for i in 0..1_000u64 {
            detector.add_element(bernoulli(i, 0.2));
        }
        assert_eq!(detector.elements_seen(), 1_000, "{}", detector.name());
        let drifts_before = detector.drifts_detected();
        detector.reset();
        assert_eq!(detector.elements_seen(), 1_000, "{}", detector.name());
        assert_eq!(detector.drifts_detected(), drifts_before, "{}", detector.name());
        // Still usable after reset.
        for i in 0..100u64 {
            detector.add_element(bernoulli(i, 0.2));
        }
        assert_eq!(detector.elements_seen(), 1_100, "{}", detector.name());
    }
}

/// Binary-only detectors must say so; real-valued detectors must accept
/// fractional losses without panicking.
#[test]
fn input_domain_metadata_is_consistent() {
    let mut factory = DetectorFactory::with_optwin_window(500);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        assert_eq!(
            detector.supports_real_valued_input(),
            !kind.binary_only(),
            "{}",
            kind.label()
        );
        // Feeding fractional values must never panic, even for binary-only
        // detectors (they threshold internally).
        for i in 0..200u64 {
            detector.add_element(0.3 + 0.2 * jitter(i));
        }
    }
}

/// Identical detector configuration + identical input = identical output
/// (full determinism, a prerequisite for reproducible experiments).
#[test]
fn determinism_across_identical_runs() {
    let mut factory = DetectorFactory::with_optwin_window(800);
    for kind in DetectorKind::paper_lineup() {
        let mut a = factory.build(kind);
        let mut b = factory.build(kind);
        for i in 0..5_000u64 {
            let p = if i < 2_500 { 0.1 } else { 0.4 };
            let x = bernoulli(i, p);
            assert_eq!(a.add_element(x), b.add_element(x), "{}", kind.label());
        }
        assert_eq!(a.drifts_detected(), b.drifts_detected(), "{}", kind.label());
    }
}
