//! Contract tests every detector in the workspace must satisfy, run through
//! the public facade (`optwin` crate) exactly as a downstream user would.

use optwin::{DetectorFactory, DetectorKind, DriftStatus};

/// Chunk sizes the batch-equivalence checks slice the stream into: prime,
/// power of two, and "everything at once".
const CHUNK_SIZES: [usize; 4] = [1, 61, 1_024, usize::MAX];

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

fn bernoulli(i: u64, p: f64) -> f64 {
    if jitter(i) + 0.5 < p {
        1.0
    } else {
        0.0
    }
}

/// Every detector must eventually detect a massive error-rate increase.
#[test]
fn all_detectors_catch_a_massive_shift() {
    let factory = DetectorFactory::with_optwin_window(2_000);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        let mut detected = false;
        for i in 0..30_000u64 {
            let p = if i < 15_000 { 0.05 } else { 0.70 };
            if detector.add_element(bernoulli(i, p)) == DriftStatus::Drift && i >= 15_000 {
                detected = true;
                break;
            }
        }
        assert!(
            detected,
            "{} missed a 5% -> 70% error-rate jump",
            kind.label()
        );
    }
}

/// Counters must be monotone and reset() must not clear the lifetime
/// counters (they describe the detector's history, not its window).
#[test]
fn counters_and_reset_contract() {
    let factory = DetectorFactory::with_optwin_window(500);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        for i in 0..1_000u64 {
            detector.add_element(bernoulli(i, 0.2));
        }
        assert_eq!(detector.elements_seen(), 1_000, "{}", detector.name());
        let drifts_before = detector.drifts_detected();
        detector.reset();
        assert_eq!(detector.elements_seen(), 1_000, "{}", detector.name());
        assert_eq!(
            detector.drifts_detected(),
            drifts_before,
            "{}",
            detector.name()
        );
        // Still usable after reset.
        for i in 0..100u64 {
            detector.add_element(bernoulli(i, 0.2));
        }
        assert_eq!(detector.elements_seen(), 1_100, "{}", detector.name());
    }
}

/// Binary-only detectors must say so; real-valued detectors must accept
/// fractional losses without panicking.
#[test]
fn input_domain_metadata_is_consistent() {
    let factory = DetectorFactory::with_optwin_window(500);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        assert_eq!(
            detector.supports_real_valued_input(),
            !kind.binary_only(),
            "{}",
            kind.label()
        );
        // Feeding fractional values must never panic, even for binary-only
        // detectors (they threshold internally).
        for i in 0..200u64 {
            detector.add_element(0.3 + 0.2 * jitter(i));
        }
    }
}

/// The batch-first contract: for every detector kind, `add_batch` reports
/// exactly the drift indices and counters of an `add_element` fold over the
/// same input, for every way of chunking the stream.
fn assert_batch_equivalence_on(stream: &[f64], optwin_window: usize) {
    let factory = DetectorFactory::with_optwin_window(optwin_window);
    for kind in DetectorKind::paper_lineup() {
        let mut scalar = factory.build(kind);
        let mut expected_drifts = Vec::new();
        let mut expected_warnings = Vec::new();
        for (i, &x) in stream.iter().enumerate() {
            match scalar.add_element(x) {
                DriftStatus::Drift => expected_drifts.push(i),
                DriftStatus::Warning => expected_warnings.push(i),
                DriftStatus::Stable => {}
            }
        }

        for &chunk in &CHUNK_SIZES {
            let chunk = chunk.min(stream.len());
            let mut batched = factory.build(kind);
            let mut drifts = Vec::new();
            let mut warnings = Vec::new();
            for (k, xs) in stream.chunks(chunk).enumerate() {
                let outcome = batched.add_batch(xs);
                drifts.extend(outcome.drift_indices.iter().map(|&i| k * chunk + i));
                warnings.extend(outcome.warning_indices.iter().map(|&i| k * chunk + i));
            }
            assert_eq!(drifts, expected_drifts, "{} chunk {chunk}", kind.label());
            assert_eq!(
                warnings,
                expected_warnings,
                "{} chunk {chunk}",
                kind.label()
            );
            assert_eq!(
                batched.elements_seen(),
                scalar.elements_seen(),
                "{} chunk {chunk}",
                kind.label()
            );
            assert_eq!(
                batched.drifts_detected(),
                scalar.drifts_detected(),
                "{} chunk {chunk}",
                kind.label()
            );
        }
    }
}

/// Batch/scalar equivalence on a binary (Bernoulli) error stream with two
/// upward shifts.
#[test]
fn batch_equals_scalar_on_binary_streams() {
    let stream: Vec<f64> = (0..12_000u64)
        .map(|i| {
            let p = match i {
                0..=4_999 => 0.05,
                5_000..=8_999 => 0.35,
                _ => 0.70,
            };
            bernoulli(i, p)
        })
        .collect();
    assert_batch_equivalence_on(&stream, 1_500);
}

/// Batch/scalar equivalence on a real-valued loss stream (mean and variance
/// both shift), exercising the non-binary code paths (OPTWIN's f-test,
/// KSWIN's KS test).
#[test]
fn batch_equals_scalar_on_real_valued_streams() {
    let stream: Vec<f64> = (0..12_000u64)
        .map(|i| {
            let (base, spread) = match i {
                0..=4_999 => (0.15, 0.05),
                5_000..=8_999 => (0.45, 0.05),
                _ => (0.45, 0.35),
            };
            (base + spread * jitter(i)).clamp(0.0, 1.0)
        })
        .collect();
    assert_batch_equivalence_on(&stream, 1_500);
}

/// Identical detector configuration + identical input = identical output
/// (full determinism, a prerequisite for reproducible experiments).
#[test]
fn determinism_across_identical_runs() {
    let factory = DetectorFactory::with_optwin_window(800);
    for kind in DetectorKind::paper_lineup() {
        let mut a = factory.build(kind);
        let mut b = factory.build(kind);
        for i in 0..5_000u64 {
            let p = if i < 2_500 { 0.1 } else { 0.4 };
            let x = bernoulli(i, p);
            assert_eq!(a.add_element(x), b.add_element(x), "{}", kind.label());
        }
        assert_eq!(a.drifts_detected(), b.drifts_detected(), "{}", kind.label());
    }
}
