//! Adversarial batch == scalar equivalence property.
//!
//! The workspace's core contract is that every detector's native `add_batch`
//! is observationally identical to an `add_element` fold. The deterministic
//! contract tests exercise that on well-behaved streams; this property pushes
//! the same contract through adversarial float values — signed zeros,
//! subnormals, huge magnitudes that overflow squared sums to infinity, and
//! long constant runs that drive every variance to exactly zero — for all
//! eight `DetectorSpec` kinds.
//!
//! Equivalence is checked bit-exactly: beyond the drift/warning indices and
//! lifetime counters, the full state snapshots of the batched and the scalar
//! detector must agree with floats compared by `to_bits` (so even an
//! identically-placed NaN accumulator or a `-0.0` vs `0.0` divergence in the
//! window fails the property).

use optwin::{DetectorSpec, DriftDetector, DriftStatus, SnapshotEncoding};
use proptest::prelude::*;

/// Chunkings the batched detector replays the stream under.
const CHUNK_SIZES: [usize; 4] = [1, 13, 256, usize::MAX];

/// Chunkings for the forced-hibernation property (each chunk boundary costs
/// a full compress → rebuild → restore cycle, so the per-element chunking is
/// replaced with a small-but-not-trivial one).
const CYCLE_CHUNK_SIZES: [usize; 3] = [7, 256, usize::MAX];

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Expands one segment seed into a run of adversarial values.
fn segment_values(seed: u64, out: &mut Vec<f64>) {
    let class = seed % 11;
    let len = 1 + ((seed / 11) % 120) as usize;
    for j in 0..len as u64 {
        let v = match class {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => 5e-324, // smallest positive subnormal
            4 => -5e-324,
            5 => f64::MIN_POSITIVE, // smallest positive normal
            6 => 1e300,             // squares to +inf in sum-of-squares
            7 => -1e300,
            8 => 0.25, // long constant run, zero variance
            9 => 0.2 + 0.1 * jitter(seed.wrapping_add(j)),
            _ => (seed.wrapping_add(j).wrapping_mul(37) % 11) as f64 / 10.0,
        };
        out.push(v);
    }
}

fn arb_stream() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u64..u64::MAX, 4..16).prop_map(|seeds| {
        let mut out = Vec::new();
        for seed in seeds {
            segment_values(seed, &mut out);
        }
        out
    })
}

/// Structural equality with floats compared by bit pattern: `NaN == NaN`
/// (same payload) and `-0.0 != 0.0`, which value equality on `f64` gets
/// backwards for this purpose.
fn value_bits_eq(a: &serde::Value, b: &serde::Value) -> bool {
    use serde::Value;
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Array(xs), Value::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| value_bits_eq(x, y))
        }
        (Value::Object(xs), Value::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && value_bits_eq(va, vb))
        }
        _ => a == b,
    }
}

/// Folds the stream element-wise, returning the drift/warning indices.
fn scalar_fold(detector: &mut dyn DriftDetector, stream: &[f64]) -> (Vec<usize>, Vec<usize>) {
    let mut drifts = Vec::new();
    let mut warnings = Vec::new();
    for (i, &x) in stream.iter().enumerate() {
        match detector.add_element(x) {
            DriftStatus::Drift => drifts.push(i),
            DriftStatus::Warning => warnings.push(i),
            DriftStatus::Stable => {}
        }
    }
    (drifts, warnings)
}

proptest! {
    /// For every detector kind and every chunking, the batched run makes the
    /// exact decisions of the scalar fold and lands in the bit-identical
    /// state, no matter how hostile the input values are.
    #[test]
    fn batch_equals_scalar_on_adversarial_streams(stream in arb_stream()) {
        for spec in DetectorSpec::all_defaults() {
            let mut scalar = spec.build().expect("default specs are valid");
            let (expected_drifts, expected_warnings) = scalar_fold(scalar.as_mut(), &stream);

            for &chunk in &CHUNK_SIZES {
                let chunk = chunk.min(stream.len());
                let mut batched = spec.build().expect("default specs are valid");
                let mut drifts = Vec::new();
                let mut warnings = Vec::new();
                for (k, xs) in stream.chunks(chunk).enumerate() {
                    let outcome = batched.add_batch(xs);
                    drifts.extend(outcome.drift_indices.iter().map(|&i| k * chunk + i));
                    warnings.extend(outcome.warning_indices.iter().map(|&i| k * chunk + i));
                }

                prop_assert!(
                    drifts == expected_drifts,
                    "{} chunk {chunk}: drifts {drifts:?} != {expected_drifts:?}",
                    spec.id()
                );
                prop_assert!(
                    warnings == expected_warnings,
                    "{} chunk {chunk}: warnings {warnings:?} != {expected_warnings:?}",
                    spec.id()
                );
                prop_assert!(
                    batched.elements_seen() == scalar.elements_seen(),
                    "{} chunk {chunk}: elements_seen diverges",
                    spec.id()
                );
                prop_assert!(
                    batched.drifts_detected() == scalar.drifts_detected(),
                    "{} chunk {chunk}: drifts_detected diverges",
                    spec.id()
                );

                let scalar_state = scalar.snapshot_state();
                let batched_state = batched.snapshot_state();
                prop_assert!(
                    scalar_state.is_some() == batched_state.is_some(),
                    "{} chunk {chunk}: snapshot support diverges",
                    spec.id()
                );
                if let (Some(a), Some(b)) = (scalar_state, batched_state) {
                    prop_assert!(
                        value_bits_eq(&a, &b),
                        "{} chunk {}: batched state diverges bit-wise from scalar state",
                        spec.id(),
                        chunk
                    );
                }
            }
        }
    }
}

proptest! {
    /// The engine's hibernation tier in miniature, without the engine: after
    /// every chunk the detector is compressed exactly as a shard worker
    /// would (wire-v4 binary state → compact JSON blob), dropped, and a
    /// fresh instance is rebuilt from the spec and restored from the blob.
    /// For every detector kind and chunking, the cycled detector must make
    /// the exact decisions of a never-hibernated scalar fold and finish in
    /// the bit-identical state — even under adversarial values (signed
    /// zeros, subnormals, ±1e300, constant runs).
    #[test]
    fn forced_hibernation_cycles_preserve_bit_exactness(stream in arb_stream()) {
        for spec in DetectorSpec::all_defaults() {
            let mut reference = spec.build().expect("default specs are valid");
            let (expected_drifts, expected_warnings) = scalar_fold(reference.as_mut(), &stream);

            for &chunk in &CYCLE_CHUNK_SIZES {
                let chunk = chunk.min(stream.len());
                let mut cycled = spec.build().expect("default specs are valid");
                let mut drifts = Vec::new();
                let mut warnings = Vec::new();
                for (k, xs) in stream.chunks(chunk).enumerate() {
                    let outcome = cycled.add_batch(xs);
                    drifts.extend(outcome.drift_indices.iter().map(|&i| k * chunk + i));
                    warnings.extend(outcome.warning_indices.iter().map(|&i| k * chunk + i));

                    // The hibernation cycle: compress to the wire-v4 state
                    // tree a shard worker would hold (deliberately *not*
                    // JSON text — JSON cannot carry the ±inf accumulators
                    // these streams provoke), free the detector, wake a
                    // fresh one.
                    let blob = cycled
                        .snapshot_state_encoded(SnapshotEncoding::Binary)
                        .expect("all shipped detectors support state snapshots");
                    drop(cycled);
                    cycled = spec.build().expect("default specs are valid");
                    cycled
                        .restore_state(&blob)
                        .expect("own blob restores cleanly");
                }

                prop_assert!(
                    drifts == expected_drifts,
                    "{} cycle chunk {chunk}: drifts {drifts:?} != {expected_drifts:?}",
                    spec.id()
                );
                prop_assert!(
                    warnings == expected_warnings,
                    "{} cycle chunk {chunk}: warnings {warnings:?} != {expected_warnings:?}",
                    spec.id()
                );
                prop_assert!(
                    cycled.elements_seen() == reference.elements_seen(),
                    "{} cycle chunk {chunk}: elements_seen diverges",
                    spec.id()
                );
                prop_assert!(
                    cycled.drifts_detected() == reference.drifts_detected(),
                    "{} cycle chunk {chunk}: drifts_detected diverges",
                    spec.id()
                );

                // Fresh snapshots from both sides (neither has been through
                // JSON), compared bit-wise.
                if let (Some(a), Some(b)) = (reference.snapshot_state(), cycled.snapshot_state()) {
                    prop_assert!(
                        value_bits_eq(&a, &b),
                        "{} cycle chunk {}: post-hibernation state diverges bit-wise",
                        spec.id(),
                        chunk
                    );
                }
            }
        }
    }
}
