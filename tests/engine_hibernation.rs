//! Acceptance tests for the hibernation tier: cold-stream detector-state
//! compression with transparent, **bit-exact** rehydration.
//!
//! The headline gate: a fleet running with hibernation enabled — streams
//! going cold, compressing to blobs, waking on their next record, possibly
//! several times — must emit *byte-identical* events (and `seq` numbers,
//! and final state snapshots) to the same fleet with hibernation disabled.
//! Everything else (stats accounting, persistence of sleeping fleets,
//! migration of sleeping streams across shards) layers on top of that.

use std::sync::Arc;

use optwin::{
    DetectorSpec, DriftEvent, EngineBuilder, EventSink, HibernationPolicy, MemorySink,
    SnapshotEncoding,
};

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// The spec assigned to a stream: the full 8-kind paper line-up, tiled.
fn spec_of(stream: u64) -> DetectorSpec {
    let specs = DetectorSpec::all_defaults();
    specs[(stream as usize) % specs.len()].clone()
}

/// The `i`-th element of a stream: drifts halfway through, binary-only
/// detectors get Bernoulli indicators, the rest real-valued losses.
fn element(stream: u64, i: u64, drift_at: u64) -> f64 {
    let p = if i < drift_at { 0.06 } else { 0.55 };
    let u = jitter(stream.wrapping_mul(0x9E37_79B9) ^ i) + 0.5;
    if spec_of(stream).binary_only() {
        f64::from(u < p)
    } else {
        (p + 0.4 * (u - 0.5)).clamp(0.0, 1.0)
    }
}

/// Event order across shard workers is nondeterministic; per-stream order is
/// the contract. Sort before comparing.
fn sorted(mut events: Vec<DriftEvent>) -> Vec<DriftEvent> {
    events.sort_unstable_by_key(|e| (e.stream, e.seq, e.is_drift()));
    events
}

/// Bit-level equality of two snapshot value trees (`Float`s by `to_bits`,
/// so `-0.0 != 0.0` and NaN payloads must match exactly).
fn value_bits_eq(a: &serde::Value, b: &serde::Value) -> bool {
    use serde::Value;
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Array(x), Value::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| value_bits_eq(a, b))
        }
        (Value::Object(x), Value::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && value_bits_eq(va, vb))
        }
        _ => a == b,
    }
}

/// Builds a 24-stream mixed-kind engine; `policy` enables hibernation.
fn build_fleet(policy: Option<HibernationPolicy>) -> (optwin::EngineHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    if let Some(policy) = policy {
        builder = builder.hibernation(policy);
    }
    for stream in 0..24u64 {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    (builder.build().expect("valid engine"), sink)
}

/// Drives `handle` through `rounds` bursty rounds: each round feeds only the
/// streams active that round (each stream idles two rounds out of five, at
/// a per-stream phase), then flushes — twice, so with `cold_after_flushes`
/// ≤ 2 the idle streams actually cross the threshold mid-run and must
/// rehydrate when their burst returns.
fn drive(handle: &optwin::EngineHandle, rounds: u64, per_round: u64) {
    for round in 0..rounds {
        let mut records = Vec::new();
        for stream in 0..24u64 {
            if (round + stream) % 5 < 2 {
                continue; // this stream idles this round
            }
            let base = round * per_round;
            for i in 0..per_round {
                let seq = base + i;
                records.push((stream, element(stream, seq, rounds * per_round / 2)));
            }
        }
        handle.submit(&records).expect("engine running");
        handle.flush().expect("flush");
        handle.flush().expect("flush");
    }
}

#[test]
fn hibernating_fleet_is_bit_exact_with_never_sleeping_fleet() {
    // cold_after_flushes(1): one recordless barrier puts a stream to sleep,
    // so every stream hibernates and rehydrates several times across the
    // bursty schedule.
    let (hibernating, hib_sink) = build_fleet(Some(HibernationPolicy::cold_after_flushes(1)));
    let (reference, ref_sink) = build_fleet(None);

    drive(&hibernating, 10, 120);
    drive(&reference, 10, 120);

    // The run must actually have exercised the tier.
    let stats = hibernating.stats().expect("stats");
    assert!(
        stats.rehydrations() > 0,
        "bursty schedule never rehydrated anything"
    );
    assert!(stats.hibernated_streams() > 0, "no stream is asleep");

    // Identical events, identical per-stream positions.
    assert_eq!(sorted(hib_sink.drain()), sorted(ref_sink.drain()));
    let mut hib_streams = hibernating.stream_snapshots().expect("snapshots");
    let mut ref_streams = reference.stream_snapshots().expect("snapshots");
    hib_streams.sort_unstable_by_key(|s| s.stream);
    ref_streams.sort_unstable_by_key(|s| s.stream);
    for (h, r) in hib_streams.iter().zip(&ref_streams) {
        assert_eq!(
            (h.stream, h.elements, h.drifts),
            (r.stream, r.elements, r.drifts)
        );
    }

    // Identical final state, blob or not: the hibernating engine's snapshot
    // serves sleeping streams from their blobs. Compare after a JSON
    // round-trip — the actual persistence path — which also normalizes the
    // `UInt`-vs-`Int` representation of in-range counters (blob states have
    // already been through JSON once; live states have not).
    let round_trip = |snap: optwin::EngineSnapshot| {
        optwin::EngineSnapshot::from_json(&snap.to_json()).expect("round-trip")
    };
    let hib_snap = round_trip(
        hibernating
            .snapshot_with(SnapshotEncoding::Binary)
            .expect("snapshot"),
    );
    let ref_snap = round_trip(
        reference
            .snapshot_with(SnapshotEncoding::Binary)
            .expect("snapshot"),
    );
    assert_eq!(hib_snap.streams.len(), ref_snap.streams.len());
    for (h, r) in hib_snap.streams.iter().zip(&ref_snap.streams) {
        assert_eq!(h.stream, r.stream);
        assert_eq!(h.seq, r.seq);
        assert!(
            value_bits_eq(&h.state, &r.state),
            "stream {} ({}): hibernated state diverged from reference",
            h.stream,
            h.detector
        );
    }
    assert!(hib_snap.streams.iter().any(|s| s.hibernated));
    assert!(ref_snap.streams.iter().all(|s| !s.hibernated));

    hibernating.shutdown().expect("shutdown");
    reference.shutdown().expect("shutdown");
}

#[test]
fn hibernation_frees_memory_and_stats_account_for_it() {
    let (handle, _sink) = build_fleet(Some(HibernationPolicy::cold_after_flushes(2)));

    // Warm every stream, then let the whole fleet go cold.
    let mut records = Vec::new();
    for stream in 0..24u64 {
        for i in 0..200u64 {
            records.push((stream, element(stream, i, u64::MAX)));
        }
    }
    handle.submit(&records).expect("submit");
    handle.flush().expect("flush");
    let live = handle.stats().expect("stats");
    assert_eq!(live.hibernated_streams(), 0);
    let live_bytes = live.resident_bytes();
    assert!(live_bytes > 0);

    handle.flush().expect("flush");
    handle.flush().expect("flush");
    let cold = handle.stats().expect("stats");
    assert_eq!(
        cold.hibernated_streams(),
        24,
        "whole fleet should be asleep"
    );
    assert!(cold.hibernated_bytes() > 0);
    assert!(
        cold.resident_bytes() < live_bytes / 2,
        "hibernation saved too little: {} -> {}",
        live_bytes,
        cold.resident_bytes()
    );

    // Per-stream introspection carries the flag and the footprint, and the
    // Display rendering surfaces the memory columns.
    for snapshot in handle.stream_snapshots().expect("snapshots") {
        assert!(
            snapshot.hibernated,
            "stream {} still awake",
            snapshot.stream
        );
        assert!(snapshot.mem_bytes > 0);
        assert_eq!(handle.shard_of(snapshot.stream), snapshot.shard);
    }
    let rendered = cold.to_string();
    assert!(
        rendered.contains("hibernated"),
        "missing memory columns: {rendered}"
    );

    // One record wakes exactly its stream.
    handle.submit(&[(3, 0.5)]).expect("submit");
    handle.flush().expect("flush");
    let woken = handle.stats().expect("stats");
    assert_eq!(woken.rehydrations(), 1);
    assert_eq!(woken.hibernated_streams(), 23);
    let snapshot = handle
        .stream_stats(3)
        .expect("query")
        .expect("stream 3 exists");
    assert!(!snapshot.hibernated);

    handle.shutdown().expect("shutdown");
}

#[test]
fn sleeping_fleet_snapshots_and_restores_without_waking() {
    let rounds = 6;
    let per_round = 100;
    let (original, orig_sink) = build_fleet(Some(HibernationPolicy::cold_after_flushes(1)));
    let (reference, ref_sink) = build_fleet(None);
    drive(&original, rounds, per_round);
    drive(&reference, rounds, per_round);
    let mut first_half = sorted(orig_sink.drain());
    assert_eq!(first_half, sorted(ref_sink.drain()));

    // Put the *entire* fleet to sleep, then snapshot: every entry must be
    // persisted from its blob, marked hibernated.
    original.flush().expect("flush");
    original.flush().expect("flush");
    assert_eq!(original.stats().expect("stats").hibernated_streams(), 24);
    let snapshot = original.snapshot_compact().expect("snapshot");
    assert!(snapshot.streams.iter().all(|s| s.hibernated));
    original.shutdown().expect("shutdown");

    // Round-trip through JSON, restore into a hibernating builder: the
    // fleet comes back *still asleep* — no detector was ever materialized.
    let json = snapshot.to_json();
    let restored_snapshot = optwin::EngineSnapshot::from_json(&json).expect("parse");
    let sink = Arc::new(MemorySink::new());
    let restored = EngineBuilder::new()
        .shards(4)
        .hibernation(HibernationPolicy::cold_after_flushes(1))
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .restore(restored_snapshot.clone())
        .build()
        .expect("restore");
    assert_eq!(
        restored.stats().expect("stats").hibernated_streams(),
        24,
        "restore materialized detectors it should have kept asleep"
    );

    // A non-hibernating builder restores the same snapshot fully awake.
    let awake_sink = Arc::new(MemorySink::new());
    let awake = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&awake_sink) as Arc<dyn EventSink>)
        .restore(restored_snapshot)
        .build()
        .expect("restore");
    assert_eq!(awake.stats().expect("stats").hibernated_streams(), 0);

    // Both restored engines — and the uninterrupted reference — agree on
    // the second half of the run, bit for bit.
    for round in rounds..rounds * 2 {
        let mut records = Vec::new();
        for stream in 0..24u64 {
            let base = round * per_round;
            for i in 0..per_round {
                let seq = base + i;
                records.push((stream, element(stream, seq, rounds * per_round / 2)));
            }
        }
        restored.submit(&records).expect("submit");
        awake.submit(&records).expect("submit");
        reference.submit(&records).expect("submit");
    }
    restored.shutdown().expect("shutdown");
    awake.shutdown().expect("shutdown");
    reference.shutdown().expect("shutdown");
    let second_half = sorted(ref_sink.drain());
    assert_eq!(sorted(sink.drain()), second_half);
    assert_eq!(sorted(awake_sink.drain()), second_half);
    assert!(
        !second_half.is_empty() || !first_half.is_empty(),
        "workload produced no events at all; the equivalence is vacuous"
    );
    first_half.clear();
}

/// Prints the per-kind memory audit behind the README's "Memory &
/// hibernation" table: for each of the 8 default specs, one stream is fed
/// 4 096 binary error indicators (the paper's production input — windows
/// of 0/1 bit-pack in the v4 codec), measured live, then hibernated and
/// measured again. Run with:
///
/// ```text
/// cargo test --release --test engine_hibernation memory_audit -- --ignored --nocapture
/// ```
#[test]
#[ignore = "prints the measured bytes/stream table for the README"]
fn memory_audit_table() {
    println!("| detector | live B/stream | hibernated B/stream | ratio |");
    println!("|---|---|---|---|");
    for spec in DetectorSpec::all_defaults() {
        let handle = EngineBuilder::new()
            .shards(1)
            .hibernation(HibernationPolicy::cold_after_flushes(1))
            .stream_spec(0, spec.clone())
            .build()
            .expect("valid engine");
        let records: Vec<(u64, f64)> = (0..4_096u64)
            .map(|i| (0, f64::from(jitter(i) + 0.5 < 0.06)))
            .collect();
        handle.submit(&records).expect("submit");
        handle.flush().expect("flush");
        let live = handle.stats().expect("stats").resident_bytes();
        handle.flush().expect("flush");
        let stats = handle.stats().expect("stats");
        assert_eq!(stats.hibernated_streams(), 1);
        let asleep = stats.resident_bytes();
        println!(
            "| {} | {live} | {asleep} | {:.2}% |",
            spec.detector_name(),
            asleep as f64 / live as f64 * 100.0
        );
        handle.shutdown().expect("shutdown");
    }
}

#[test]
fn hibernated_streams_migrate_across_shards_intact() {
    let (handle, sink) = build_fleet(Some(HibernationPolicy::cold_after_flushes(1)));
    let (reference, ref_sink) = build_fleet(None);

    // Skewed load: streams on shard 0 (ids ≡ 0 mod 4) do 10× the work.
    let feed = |h: &optwin::EngineHandle, lo: u64, hi: u64| {
        let mut records = Vec::new();
        for stream in 0..24u64 {
            let n = if stream % 4 == 0 { 400 } else { 40 };
            for i in lo * n..hi * n {
                records.push((stream, element(stream, i, n)));
            }
        }
        h.submit(&records).expect("submit");
        h.flush().expect("flush");
    };
    feed(&handle, 0, 1);
    feed(&reference, 0, 1);

    // Everything asleep, then rebalance: blobs — not detectors — migrate.
    handle.flush().expect("flush");
    assert_eq!(handle.stats().expect("stats").hibernated_streams(), 24);
    let report = handle
        .rebalance(optwin::RebalancePolicy::Records)
        .expect("rebalance");
    assert!(report.moved > 0, "skewed load should trigger moves");
    let stats = handle.stats().expect("stats");
    assert_eq!(
        stats.hibernated_streams(),
        24,
        "migration must not wake sleeping streams"
    );

    // The migrated sleepers wake on their new shards with intact state.
    feed(&handle, 1, 2);
    feed(&reference, 1, 2);
    handle.shutdown().expect("shutdown");
    reference.shutdown().expect("shutdown");
    assert_eq!(sorted(sink.drain()), sorted(ref_sink.drain()));
}
