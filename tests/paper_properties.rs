//! Integration tests that check the paper's qualitative claims at a reduced
//! scale (the full-scale numbers are produced by the `optwin-bench`
//! binaries; see EXPERIMENTS.md).

use optwin::eval::experiment::{run_detector_on_sequence, Table1Experiment};
use optwin::eval::nn_pipeline::{run_nn_pipeline, NnPipelineConfig};
use optwin::stats::tests::{wilcoxon_signed_rank, Alternative};
use optwin::{Adwin, DetectorFactory, DetectorKind, DriftDetector, Optwin, OptwinConfig};

/// §1 / §4: OPTWIN's false-positive count is (far) lower than ADWIN's, EDDM's
/// and ECDD's on the sudden binary drift configuration.
#[test]
fn optwin_has_fewer_false_positives_than_noisy_baselines() {
    let mut factory = DetectorFactory::with_optwin_window(2_000);
    let (errors, schedule) = Table1Experiment::SuddenBinary.build_error_sequence(11, 15_000);

    let fp_of = |kind: DetectorKind, factory: &mut DetectorFactory| {
        let mut d = factory.build(kind);
        run_detector_on_sequence(d.as_mut(), &errors, &schedule)
            .outcome
            .false_positives
    };

    let optwin_fp = fp_of(DetectorKind::OptwinRho(500), &mut factory);
    let ecdd_fp = fp_of(DetectorKind::Ecdd, &mut factory);
    let eddm_fp = fp_of(DetectorKind::Eddm, &mut factory);
    assert!(
        optwin_fp <= ecdd_fp,
        "OPTWIN FP {optwin_fp} vs ECDD FP {ecdd_fp}"
    );
    assert!(
        optwin_fp <= eddm_fp,
        "OPTWIN FP {optwin_fp} vs EDDM FP {eddm_fp}"
    );
    assert!(
        optwin_fp <= 1,
        "OPTWIN should have at most one FP, got {optwin_fp}"
    );
}

/// §3.3: larger ρ shortens the detection delay on sudden drifts (Table 1
/// shows 75 → 28 → 18 elements for ρ = 0.1 / 0.5 / 1.0).
#[test]
fn larger_rho_means_smaller_delay_on_sudden_drift() {
    let mut factory = DetectorFactory::with_optwin_window(2_000);
    let (errors, schedule) = Table1Experiment::SuddenBinary.build_error_sequence(5, 15_000);
    let delay_of = |kind: DetectorKind, factory: &mut DetectorFactory| {
        let mut d = factory.build(kind);
        run_detector_on_sequence(d.as_mut(), &errors, &schedule)
            .outcome
            .mean_delay
            .unwrap_or(f64::INFINITY)
    };
    let d_01 = delay_of(DetectorKind::OptwinRho(100), &mut factory);
    let d_10 = delay_of(DetectorKind::OptwinRho(1000), &mut factory);
    assert!(
        d_10 <= d_01 + 1e-9,
        "rho=1.0 delay {d_10} should not exceed rho=0.1 delay {d_01}"
    );
}

/// §4.1: across the experiment grid OPTWIN's F1 is at least as good as
/// ADWIN's and STEPD's, and the one-tailed Wilcoxon test goes in OPTWIN's
/// favour (at this reduced scale we only require a small p-value direction,
/// not the full α = 0.05 significance, to keep the test fast and robust).
#[test]
fn f1_comparison_favours_optwin() {
    let mut factory = DetectorFactory::with_optwin_window(2_000);
    let experiments = [
        Table1Experiment::SuddenBinary,
        Table1Experiment::GradualBinary,
        Table1Experiment::SuddenNonBinary,
        Table1Experiment::GradualNonBinary,
    ];
    let mut optwin_f1 = Vec::new();
    let mut adwin_f1 = Vec::new();
    let mut stepd_f1 = Vec::new();
    for (i, exp) in experiments.iter().enumerate() {
        let (errors, schedule) = exp.build_error_sequence(100 + i as u64, 12_000);
        let run_f1 = |kind: DetectorKind, factory: &mut DetectorFactory| {
            let mut d = factory.build(kind);
            run_detector_on_sequence(d.as_mut(), &errors, &schedule)
                .outcome
                .f1()
        };
        optwin_f1.push(run_f1(DetectorKind::OptwinRho(500), &mut factory));
        adwin_f1.push(run_f1(DetectorKind::Adwin, &mut factory));
        stepd_f1.push(run_f1(DetectorKind::Stepd, &mut factory));
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(mean(&optwin_f1) >= mean(&adwin_f1) - 1e-9);
    assert!(mean(&optwin_f1) >= mean(&stepd_f1) - 1e-9);

    // The signed-rank statistic should lean in OPTWIN's favour vs STEPD
    // (STEPD's F1 collapses on the non-binary experiments, as in the paper).
    if optwin_f1 != stepd_f1 {
        let w = wilcoxon_signed_rank(&optwin_f1, &stepd_f1, Alternative::Greater).unwrap();
        assert!(w.p_value <= 0.5, "p = {}", w.p_value);
    }
}

/// Figure 5: on the NN-loss pipeline OPTWIN triggers no more fine-tuning
/// batches than ADWIN (fewer false positives ⇒ less retraining), while still
/// detecting the label swaps.
#[test]
fn nn_pipeline_optwin_retrains_no_more_than_adwin() {
    let config = NnPipelineConfig {
        total_batches: 2_500,
        pretrain_batches: 300,
        fine_tune_batches: 80,
        n_classes: 6,
        n_inputs: 32,
        batch_size: 16,
        seed: 5,
        ..NnPipelineConfig::default()
    };
    let mut optwin = Optwin::new(
        OptwinConfig::builder()
            .robustness(0.5)
            .max_window(1_000)
            .build()
            .unwrap(),
    )
    .unwrap();
    let optwin_run = run_nn_pipeline(&config, &mut optwin);

    let mut adwin = Adwin::with_defaults();
    let adwin_run = run_nn_pipeline(&config, &mut adwin);

    assert!(
        optwin_run.outcome.true_positives >= 3,
        "{:?}",
        optwin_run.outcome
    );
    // At this reduced scale a single extra/missing detection swings the
    // fine-tuning count by one whole phase, so compare up to one phase; the
    // paper-scale comparison (where OPTWIN's advantage is ~2.6×) is produced
    // by the `fig5_nn` binary.
    assert!(
        optwin_run.fine_tune_iterations
            <= adwin_run.fine_tune_iterations + config.fine_tune_batches,
        "OPTWIN fine-tuned {} batches, ADWIN {}",
        optwin_run.fine_tune_iterations,
        adwin_run.fine_tune_iterations
    );
    assert_eq!(optwin.name(), "OPTWIN");
}
