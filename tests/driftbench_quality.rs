//! Detection-quality golden suite: the scaled-down driftbench grid pinned
//! against `tests/fixtures/driftbench/golden.json`.
//!
//! The grid (every detector-spec kind plus a cascade and an ensemble, across
//! all seven scenarios × 2 seeds) is fully deterministic, so a fresh run
//! reproduces the checked-in fixture bit-for-bit today. The comparison is
//! nevertheless done through **tolerance bands** — a recall/F1 floor, an
//! FP-rate ceiling and a delay ceiling per cell — so that a future
//! *deliberate* algorithm change can shift the numbers inside the bands
//! without churn, while a real quality regression (missed drifts, FP storms,
//! delay blow-ups) fails loudly. `bands_flag_a_regressed_cell` proves the
//! bands actually bite by checking a synthetically regressed report against
//! the same golden.
//!
//! Regenerate the fixture (only after a deliberate, reviewed quality
//! change) with:
//!
//! ```text
//! cargo test --test driftbench_quality regenerate_driftbench_golden -- --ignored
//! ```
//!
//! The bottom half of the file is the scorer property suite: random
//! schedules × random (unsorted, out-of-range-happy) detection sets must
//! always satisfy `TP + FN == n_drifts`, `TP + FP == detections.len()`,
//! non-negative finite delays, and permutation invariance.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use optwin::eval::score_detections;
use optwin::{run_driftbench, DriftSchedule, DriftbenchConfig, DriftbenchReport, ScenarioKind};

// ---------------------------------------------------------------------------
// The golden grid
// ---------------------------------------------------------------------------

/// The scaled-down grid the fixture pins: full line-up, full scenario
/// catalogue, 2 seeds × 8 000 elements (the full-scale numbers live in the
/// `driftbench` binary, not in CI).
fn golden_config() -> DriftbenchConfig {
    let mut config = DriftbenchConfig::full(2, 8_000, 1_000);
    config.shards = Some(2);
    config
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("driftbench")
        .join("golden.json")
}

fn load_golden() -> DriftbenchReport {
    let text = std::fs::read_to_string(fixture_path()).expect(
        "tests/fixtures/driftbench/golden.json missing — regenerate with \
         `cargo test --test driftbench_quality regenerate_driftbench_golden -- --ignored`",
    );
    serde_json::from_str(&text).expect("golden fixture parses as a DriftbenchReport")
}

/// The grid is expensive in debug builds; run it once and share it across
/// every test in this file.
fn fresh_report() -> &'static DriftbenchReport {
    static REPORT: OnceLock<DriftbenchReport> = OnceLock::new();
    REPORT.get_or_init(|| run_driftbench(&golden_config()))
}

// Tolerance bands. The grid is deterministic, so today fresh == golden
// exactly; the slack below is headroom for deliberate future changes, sized
// well under the gap a real regression opens (a missed drift at 2 seeds
// moves recall by >= 0.1 on most scenarios; an FP storm moves fp_per_10k by
// whole points).

/// Recall may drop at most this far below the golden cell.
const RECALL_SLACK: f64 = 0.15;
/// F1 may drop at most this far below the golden cell.
const F1_SLACK: f64 = 0.15;
/// `fp_per_10k` may exceed the golden cell by `max(FP_SLACK_ABS, 50%)`.
const FP_SLACK_ABS: f64 = 2.5;
/// Mean delay may exceed the golden cell by `max(DELAY_SLACK_ABS, 25%)`.
const DELAY_SLACK_ABS: f64 = 250.0;

/// Compares a report against the golden fixture cell by cell, returning
/// every band violation (empty = within tolerance).
fn band_violations(golden: &DriftbenchReport, fresh: &DriftbenchReport) -> Vec<String> {
    let mut violations = Vec::new();
    for g in &golden.cells {
        let Some(f) = fresh.cell(&g.scenario, &g.detector) else {
            violations.push(format!("{}/{}: cell disappeared", g.scenario, g.detector));
            continue;
        };
        if f.metrics.recall < g.metrics.recall - RECALL_SLACK {
            violations.push(format!(
                "{}/{}: recall {:.3} fell below golden {:.3} - {RECALL_SLACK}",
                g.scenario, g.detector, f.metrics.recall, g.metrics.recall
            ));
        }
        if f.metrics.f1 < g.metrics.f1 - F1_SLACK {
            violations.push(format!(
                "{}/{}: F1 {:.3} fell below golden {:.3} - {F1_SLACK}",
                g.scenario, g.detector, f.metrics.f1, g.metrics.f1
            ));
        }
        let fp_ceiling = g.fp_per_10k + FP_SLACK_ABS.max(0.5 * g.fp_per_10k);
        if f.fp_per_10k > fp_ceiling {
            violations.push(format!(
                "{}/{}: fp_per_10k {:.2} blew past ceiling {fp_ceiling:.2} (golden {:.2})",
                g.scenario, g.detector, f.fp_per_10k, g.fp_per_10k
            ));
        }
        if let (Some(gd), Some(fd)) = (g.metrics.mean_delay, f.metrics.mean_delay) {
            let delay_ceiling = gd + DELAY_SLACK_ABS.max(0.25 * gd);
            if fd > delay_ceiling {
                violations.push(format!(
                    "{}/{}: mean delay {fd:.1} blew past ceiling {delay_ceiling:.1} (golden {gd:.1})",
                    g.scenario, g.detector
                ));
            }
        }
        // A golden cell with a delay whose fresh run detects nothing at all
        // is caught by the recall floor, not silently excused here.
    }
    violations
}

#[test]
fn golden_grid_structure_matches() {
    let golden = load_golden();
    let fresh = fresh_report();
    assert_eq!(golden.stream_len, fresh.stream_len, "fixture scale drifted");
    assert_eq!(golden.seeds, fresh.seeds, "fixture scale drifted");

    // Full coverage: 7 scenarios × 10 line-up entries, minus the
    // binary-only detectors (DDM, EDDM, ECDD and the ensemble built from
    // them) on the two real-valued scenarios.
    assert_eq!(fresh.cells.len(), 7 * 10 - 2 * 4);
    for scenario in ScenarioKind::all() {
        let per_scenario = fresh
            .cells
            .iter()
            .filter(|c| c.scenario == scenario.id())
            .count();
        let expected = if scenario.binary_signal() { 10 } else { 6 };
        assert_eq!(per_scenario, expected, "coverage hole in {}", scenario.id());
    }

    let key = |r: &DriftbenchReport| {
        let mut cells: Vec<(String, String)> = r
            .cells
            .iter()
            .map(|c| (c.scenario.clone(), c.detector.clone()))
            .collect();
        cells.sort();
        cells
    };
    assert_eq!(key(&golden), key(fresh), "cell set diverged from golden");
}

#[test]
fn detection_quality_stays_within_golden_bands() {
    let golden = load_golden();
    let violations = band_violations(&golden, fresh_report());
    assert!(
        violations.is_empty(),
        "detection quality regressed vs tests/fixtures/driftbench/golden.json:\n  {}",
        violations.join("\n  ")
    );
}

/// The bands must actually bite: a synthetically regressed copy of the
/// golden report — recall halved on one cell, an FP storm on another, a
/// delay blow-up on a third — has to be flagged on every count.
#[test]
fn bands_flag_a_regressed_cell() {
    let golden = load_golden();
    let mut regressed = golden.clone();

    let miss = regressed
        .cells
        .iter_mut()
        .find(|c| c.metrics.recall > 0.5)
        .expect("some golden cell detects most of its drifts");
    let missed_cell = (miss.scenario.clone(), miss.detector.clone());
    miss.metrics.recall = 0.0;
    miss.metrics.f1 = 0.0;

    let storm = regressed
        .cells
        .iter_mut()
        .find(|c| (c.scenario.clone(), c.detector.clone()) != missed_cell)
        .expect("grid has more than one cell");
    let storm_cell = (storm.scenario.clone(), storm.detector.clone());
    storm.fp_per_10k += 100.0;

    let slow = regressed
        .cells
        .iter_mut()
        .find(|c| {
            c.metrics.mean_delay.is_some()
                && (c.scenario.clone(), c.detector.clone()) != missed_cell
        })
        .expect("some golden cell has a mean delay");
    let slow_cell = (slow.scenario.clone(), slow.detector.clone());
    slow.metrics.mean_delay = slow.metrics.mean_delay.map(|d| 4.0 * d + 10_000.0);

    let violations = band_violations(&golden, &regressed);
    let hit = |cell: &(String, String)| {
        violations
            .iter()
            .any(|v| v.starts_with(&format!("{}/{}", cell.0, cell.1)))
    };
    assert!(
        hit(&missed_cell),
        "recall collapse not flagged: {violations:?}"
    );
    assert!(hit(&storm_cell), "FP storm not flagged: {violations:?}");
    assert!(hit(&slow_cell), "delay blow-up not flagged: {violations:?}");
}

#[test]
#[ignore = "regenerates tests/fixtures/driftbench/golden.json; run only after a deliberate quality change"]
fn regenerate_driftbench_golden() {
    let report = run_driftbench(&golden_config());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::create_dir_all(fixture_path().parent().unwrap()).expect("fixture dir");
    std::fs::write(fixture_path(), json + "\n").expect("fixture written");
    println!("regenerated {}", fixture_path().display());
}

// ---------------------------------------------------------------------------
// Scorer properties: random schedules × random detection sets
// ---------------------------------------------------------------------------

/// Random valid schedule: strictly increasing positions starting at >= 1,
/// any width (sudden through very gradual), stream long enough to hold the
/// last drift.
fn arb_schedule() -> impl Strategy<Value = DriftSchedule> {
    // The vendored proptest shim has no tuple strategies, so width, tail
    // and the position gaps all come out of one raw vector: the first two
    // draws parameterise the shape, the rest become strictly positive gaps.
    proptest::collection::vec(1usize..2_000, 3..10).prop_map(|raw| {
        let width = 1 + raw[0] % 1_500;
        let tail = raw[1];
        let mut positions = Vec::with_capacity(raw.len() - 2);
        let mut at = 0usize;
        for gap in &raw[2..] {
            at += gap;
            positions.push(at);
        }
        DriftSchedule::new(positions, width, at + tail)
    })
}

/// Deterministic Fisher–Yates driven by SplitMix64, so permutation
/// invariance is exercised beyond "sorted vs reversed".
fn shuffled(detections: &[usize], seed: u64) -> Vec<usize> {
    let mut out = detections.to_vec();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..out.len()).rev() {
        out.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    out
}

proptest! {
    /// Every detection lands in exactly one bucket and every drift is
    /// either hit or missed: `TP + FN == n_drifts`,
    /// `TP + FP == detections.len()`, and each TP contributes one
    /// non-negative finite delay.
    #[test]
    fn scorer_partitions_drifts_and_detections(
        schedule in arb_schedule(),
        detections in proptest::collection::vec(0usize..20_000, 0..40),
    ) {
        let outcome = score_detections(&schedule, &detections);
        prop_assert_eq!(
            outcome.true_positives + outcome.false_negatives,
            schedule.n_drifts()
        );
        prop_assert_eq!(
            outcome.true_positives + outcome.false_positives,
            detections.len()
        );
        prop_assert_eq!(outcome.delays.len(), outcome.true_positives);
        for &delay in &outcome.delays {
            prop_assert!(delay.is_finite() && delay >= 0.0, "bad delay {delay}");
        }
    }

    /// The outcome is invariant under any permutation of the detection
    /// list: sorted, reversed and Fisher–Yates-shuffled inputs all score
    /// identically.
    #[test]
    fn scorer_is_permutation_invariant(
        schedule in arb_schedule(),
        detections in proptest::collection::vec(0usize..20_000, 0..40),
        seed in 0u64..u64::MAX,
    ) {
        let reference = score_detections(&schedule, &detections);

        let mut sorted = detections.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&score_detections(&schedule, &sorted), &reference);

        let mut reversed = sorted;
        reversed.reverse();
        prop_assert_eq!(&score_detections(&schedule, &reversed), &reference);

        let shuffled = shuffled(&detections, seed);
        prop_assert_eq!(&score_detections(&schedule, &shuffled), &reference);
    }
}
