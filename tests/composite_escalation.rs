//! Escalation-contract suite for the composite detectors: the cascade's
//! cheap-guard → expensive-confirmer protocol must be **deterministic and
//! bit-exact** across every surface that can interrupt it.
//!
//! * **All 64 guard/confirmer pairs** (8 shipped detector kinds each way):
//!   batched ingestion is observationally identical to the element fold,
//!   and a snapshot cut **mid-escalation** — confirmer live, drift not yet
//!   confirmed — restores into a fresh cascade that makes identical
//!   subsequent decisions and reaches a bit-identical final state.
//! * **Engine level**: a fleet of cascades and ensembles survives the full
//!   durability stack mid-escalation — delta checkpoints + WAL tail
//!   (crash-style recovery) and forced hibernation at every flush barrier —
//!   with the recovered fleet's [`DriftEvent`] sequences byte-identical to
//!   an uninterrupted reference run.
//!
//! The golden-fixture half of this contract (a checked-in v4 snapshot with
//! a mid-escalation cascade stream, asserting no wire-format bump) lives in
//! `tests/snapshot_compat.rs` next to the rest of the corpus.

use std::path::Path;
use std::sync::Arc;

use optwin::core::{DriftDetector, DriftStatus, SnapshotEncoding};
use optwin::{
    Cascade, CascadeConfig, DetectorSpec, DriftEvent, EngineBuilder, EngineHandle, EventSink,
    HibernationPolicy, MemorySink,
};

/// The 8 shipped detector kinds, each usable as guard or confirmer.
const KINDS: [&str; 8] = [
    "optwin:w_max=600",
    "adwin",
    "ddm",
    "eddm",
    "stepd",
    "ecdd",
    "page_hinkley",
    // α = 0.05, not the usual 1e-4: on Bernoulli indicators the two-sample
    // KS statistic is at most |Δp| = 0.4, below the 1e-4 critical value for
    // these window sizes — KSWIN could never fire on this workload.
    "kswin:window_size=120,stat_size=25,alpha=0.05",
];

const LEN: usize = 3_000;
const DRIFT_AT: usize = 1_500;

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// A Bernoulli error-indicator stream (valid input for every detector
/// kind): error rate 0.05, jumping to 0.45 at [`DRIFT_AT`]. `salt` decouples
/// the noise across streams.
fn element(salt: u64, i: usize) -> f64 {
    let p = if i < DRIFT_AT { 0.05 } else { 0.45 };
    f64::from(jitter(salt.wrapping_mul(0x9E3779B1) ^ i as u64) + 0.5 < p)
}

fn cascade_of(guard: &str, confirm: &str) -> Cascade {
    Cascade::new(CascadeConfig {
        guard: Box::new(guard.parse().expect("valid guard spec")),
        confirm: Box::new(confirm.parse().expect("valid confirmer spec")),
        // The ring must span the change point even for the slowest guard:
        // a confirmer warm-started purely on post-drift data sees a
        // stationary stream and (correctly) never confirms.
        replay: 512,
        cooldown: 256,
    })
    .expect("valid cascade config")
}

// ---------------------------------------------------------------------------
// All 64 pairs: batch == element fold
// ---------------------------------------------------------------------------

/// For every guard/confirmer pair, chunked [`DriftDetector::add_batch`]
/// ingestion — including the cascade's dormant fast path — reports exactly
/// the drift/warning indices of the element-by-element fold, and both
/// detectors end in bit-identical serialized state.
#[test]
fn all_64_pairs_batch_ingestion_matches_element_fold() {
    for (g, guard) in KINDS.iter().enumerate() {
        for (c, confirm) in KINDS.iter().enumerate() {
            let salt = (g * 8 + c) as u64;
            let stream: Vec<f64> = (0..LEN).map(|i| element(salt, i)).collect();

            let mut folded = cascade_of(guard, confirm);
            let mut fold_drifts = Vec::new();
            let mut fold_warnings = Vec::new();
            for (i, &value) in stream.iter().enumerate() {
                match folded.add_element(value) {
                    DriftStatus::Drift => fold_drifts.push(i),
                    DriftStatus::Warning => fold_warnings.push(i),
                    DriftStatus::Stable => {}
                }
            }

            for chunk in [7usize, 256, LEN] {
                let mut batched = cascade_of(guard, confirm);
                let mut drifts = Vec::new();
                let mut warnings = Vec::new();
                let mut offset = 0;
                for window in stream.chunks(chunk) {
                    let outcome = batched.add_batch(window);
                    assert_eq!(outcome.len, window.len());
                    drifts.extend(outcome.drift_indices.iter().map(|i| i + offset));
                    warnings.extend(outcome.warning_indices.iter().map(|i| i + offset));
                    offset += window.len();
                }
                assert_eq!(
                    drifts, fold_drifts,
                    "{guard}→{confirm} chunk {chunk}: drift indices"
                );
                assert_eq!(
                    warnings, fold_warnings,
                    "{guard}→{confirm} chunk {chunk}: warning indices"
                );
                assert_eq!(batched.elements_seen(), folded.elements_seen());
                assert_eq!(batched.drifts_detected(), folded.drifts_detected());
                assert_eq!(
                    batched.snapshot_state_encoded(SnapshotEncoding::Json),
                    folded.snapshot_state_encoded(SnapshotEncoding::Json),
                    "{guard}→{confirm} chunk {chunk}: final state must be bit-identical"
                );
            }
            assert!(
                !fold_drifts.is_empty(),
                "{guard}→{confirm}: the 0.05→0.45 jump must confirm a drift"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// All 64 pairs: a mid-escalation snapshot restores bit-exactly
// ---------------------------------------------------------------------------

/// A cascade whose confirmer reliably goes (and stays) **live**: the
/// 64-element ring is too short for a warm-start to confirm on its own —
/// by the time a slow guard escalates, the ring holds only the post-change
/// plateau, which is stationary.
fn live_cascade_of(guard: &str, confirm: &str) -> Cascade {
    Cascade::new(CascadeConfig {
        guard: Box::new(guard.parse().expect("valid guard spec")),
        confirm: Box::new(confirm.parse().expect("valid confirmer spec")),
        replay: 64,
        cooldown: 256,
    })
    .expect("valid cascade config")
}

/// For every guard/confirmer pair, the stream is cut at the **first
/// element on which the confirmer is live** — the exact middle of an
/// escalation, dormant-confirmer flag down, replay ring warm — and the
/// snapshot (both encodings) restores into a fresh cascade that emits an
/// identical status for every remaining element and lands in bit-identical
/// final state.
#[test]
fn all_64_pairs_snapshot_mid_escalation_restores_bit_exact() {
    for (g, guard) in KINDS.iter().enumerate() {
        for (c, confirm) in KINDS.iter().enumerate() {
            let salt = 64 + (g * 8 + c) as u64;
            let stream: Vec<f64> = (0..LEN).map(|i| element(salt, i)).collect();

            let mut original = live_cascade_of(guard, confirm);
            let mut cut = None;
            for (i, &value) in stream.iter().enumerate() {
                original.add_element(value);
                if original.is_escalated() {
                    cut = Some(i + 1);
                    break;
                }
            }
            // Earlier escalations may have been confirmed instantly during
            // warm-start; what matters here is that *this* cut lands with
            // the confirmer live and the drift still unconfirmed.
            let cut = cut.unwrap_or_else(|| {
                panic!("{guard}→{confirm}: the guard never escalated on the jump")
            });

            for encoding in [SnapshotEncoding::Json, SnapshotEncoding::Binary] {
                let state = original
                    .snapshot_state_encoded(encoding)
                    .expect("cascades are snapshot-capable");
                let mut restored = live_cascade_of(guard, confirm);
                restored
                    .restore_state(&state)
                    .expect("mid-escalation snapshot restores");
                assert!(
                    restored.is_escalated(),
                    "{guard}→{confirm}: the live confirmer must survive the round-trip"
                );

                let mut replica = live_cascade_of(guard, confirm);
                for &value in &stream[..cut] {
                    replica.add_element(value);
                }
                for (i, &value) in stream[cut..].iter().enumerate() {
                    assert_eq!(
                        restored.add_element(value),
                        replica.add_element(value),
                        "{guard}→{confirm} ({encoding:?}): status diverged at element {}",
                        cut + i
                    );
                }
                assert_eq!(
                    restored.snapshot_state_encoded(SnapshotEncoding::Json),
                    replica.snapshot_state_encoded(SnapshotEncoding::Json),
                    "{guard}→{confirm} ({encoding:?}): final state must be bit-identical"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine level: composites survive checkpoints, WAL replay and hibernation
// ---------------------------------------------------------------------------

/// A fleet mixing cascades (representative guard/confirmer pairs) and a
/// voting ensemble — registered purely through spec strings, the canonical
/// path.
fn fleet_specs() -> Vec<(u64, DetectorSpec)> {
    [
        "cascade:guard=ddm,confirm=optwin:w_max=600",
        "cascade:guard=ecdd,confirm=adwin,replay=512,cooldown=64",
        "cascade:guard=page_hinkley,confirm=[kswin:window_size=120,stat_size=25]",
        "cascade:guard=stepd,confirm=eddm,replay=64",
        "ensemble:vote=2,members=[ddm|ecdd|page_hinkley]",
    ]
    .iter()
    .enumerate()
    .map(|(stream, text)| (stream as u64, text.parse().expect("valid composite spec")))
    .collect()
}

fn build_composite_fleet(
    checkpoint: Option<&Path>,
    hibernation: Option<HibernationPolicy>,
) -> (EngineHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(3)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    if let Some(dir) = checkpoint {
        builder = builder.checkpoint(dir, optwin::CheckpointPolicy::every_flushes(1));
    }
    if let Some(policy) = hibernation {
        builder = builder.hibernation(policy);
    }
    for (stream, spec) in fleet_specs() {
        builder = builder.stream_spec(stream, spec);
    }
    (builder.build().expect("valid engine"), sink)
}

/// Feeds `from..to` to every fleet stream in 250-element chunks with a
/// flush barrier after each — under `every_flushes(1)` that is one delta
/// checkpoint (and, under the forced policy, one hibernation sweep) per
/// chunk, several of them landing mid-escalation.
fn feed_flushing(handle: &EngineHandle, from: usize, to: usize) {
    let streams = fleet_specs().len() as u64;
    let mut records = Vec::new();
    for start in (from..to).step_by(250) {
        let end = (start + 250).min(to);
        records.clear();
        for stream in 0..streams {
            for i in start..end {
                records.push((stream, element(stream, i)));
            }
        }
        handle.submit(&records).expect("engine running");
        handle.flush().expect("no ingestion errors");
    }
}

fn canonical(mut events: Vec<DriftEvent>) -> Vec<DriftEvent> {
    events.sort_unstable_by_key(|e| (e.stream, e.seq));
    events
}

/// The uninterrupted reference: every event of the full run.
fn reference_events() -> Vec<DriftEvent> {
    let (handle, sink) = build_composite_fleet(None, None);
    feed_flushing(&handle, 0, LEN);
    let events = canonical(sink.drain());
    handle.shutdown().expect("clean shutdown");
    events
}

/// Crash-style recovery: the composite fleet checkpoints up to 1,750
/// elements (mid-escalation for the drift at 1,500), the 1,750..2,000
/// window reaches only the write-ahead log, and the process stops without
/// a final checkpoint. Recovery replays base → deltas → WAL and the resumed
/// fleet's events are byte-identical to the uninterrupted reference.
#[test]
fn composite_fleet_recovers_from_checkpoint_mid_escalation() {
    const COVERED: usize = 1_750;
    const WAL_TAIL: usize = 2_000;
    let dir = std::env::temp_dir().join(format!("optwin-composite-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (handle, _sink) = build_composite_fleet(Some(&dir), None);
    feed_flushing(&handle, 0, COVERED);
    let mut tail = Vec::new();
    for stream in 0..fleet_specs().len() as u64 {
        for i in COVERED..WAL_TAIL {
            tail.push((stream, element(stream, i)));
        }
    }
    handle.submit(&tail).expect("engine running");
    let _ = handle.stats().expect("engine running");
    handle.shutdown().expect("clean shutdown");

    let sink = Arc::new(MemorySink::new());
    let recovered = EngineBuilder::new()
        .shards(3)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .recover_from_dir(&dir)
        .expect("recoverable directory")
        .build()
        .expect("valid engine");
    feed_flushing(&recovered, WAL_TAIL, LEN);
    let events = canonical(sink.drain());
    recovered.shutdown().expect("clean shutdown");

    let expected: Vec<DriftEvent> = reference_events()
        .into_iter()
        .filter(|e| e.seq as usize >= COVERED)
        .collect();
    assert!(
        !expected.is_empty(),
        "the fleet must confirm drifts after the checkpoint coverage"
    );
    assert_eq!(
        events, expected,
        "composite recovery must resume bit-exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Forced hibernation (`cold_after_flushes(0)`) compresses every composite
/// — replay ring, live confirmer, latched ensemble votes and all — at
/// every flush barrier and rehydrates it on the next record. The fleet's
/// events must stay byte-identical to a never-hibernated run.
#[test]
fn composite_fleet_survives_forced_hibernation() {
    let (handle, sink) =
        build_composite_fleet(None, Some(HibernationPolicy::cold_after_flushes(0)));
    feed_flushing(&handle, 0, LEN);
    let stats = handle.stats().expect("engine running");
    assert!(
        stats.rehydrations() >= fleet_specs().len() as u64,
        "the forced policy must have hibernated and rehydrated the fleet"
    );
    let events = canonical(sink.drain());
    handle.shutdown().expect("clean shutdown");
    assert_eq!(
        events,
        reference_events(),
        "hibernating composites mid-escalation must not change any decision"
    );
}

/// Satellite of the memory audit: the engine's resident-byte accounting
/// must charge a composite its full cost. A dormant confirmer is free, but
/// the replay ring that would warm-start it is not — a cascade with a
/// 65,536-element ring must show up as ≥ 512 KiB in both the per-stream
/// report and the fleet aggregate, guard and outer struct on top.
#[test]
fn engine_memory_audit_counts_composite_replay_ring() {
    const RING: usize = 65_536;
    let spec: DetectorSpec = format!("cascade:guard=ddm,confirm=[optwin:w_max=100],replay={RING}")
        .parse()
        .expect("valid composite spec");
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::new()
        .shards(1)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .stream_spec(7, spec)
        .build()
        .expect("valid engine");

    // Mostly-stable data, enough of it to fill the ring.
    let records: Vec<(u64, f64)> = (0..RING + 4_096)
        .map(|i| (7, element(9_999, i % DRIFT_AT)))
        .collect();
    handle.submit(&records).expect("engine running");
    handle.flush().expect("no ingestion errors");

    let floor = RING * std::mem::size_of::<f64>();
    let stats = handle.stats().expect("engine running");
    assert!(
        stats.resident_bytes() >= floor,
        "fleet audit must include the replay ring: {} < {floor}",
        stats.resident_bytes()
    );
    let snapshot = &handle.stream_snapshots().expect("engine running")[0];
    assert!(
        snapshot.mem_bytes >= floor,
        "per-stream audit must include the replay ring: {} < {floor}",
        snapshot.mem_bytes
    );
    handle.shutdown().expect("clean shutdown");
}
