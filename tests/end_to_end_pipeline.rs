//! Cross-crate integration tests: stream → learner → detector → metrics.

use optwin::eval::classification::{run_classification_cell, ClassificationExperiment};
use optwin::eval::experiment::{run_detector_on_sequence, Table1Experiment};
use optwin::eval::metrics::score_detections;
use optwin::learners::AdaptiveLearner;
use optwin::stream::drift::MultiConceptStream;
use optwin::stream::generators::{Agrawal, AgrawalFunction};
use optwin::{
    DetectorFactory, DetectorKind, DriftSchedule, InstanceStream, NaiveBayes, Optwin, OptwinConfig,
};

/// The headline qualitative claim of the paper on a miniature scale: OPTWIN
/// reaches a higher F1 than ADWIN on the sudden binary drift experiment
/// because it produces (almost) no false positives.
#[test]
fn optwin_beats_adwin_on_sudden_binary_f1() {
    let factory = DetectorFactory::with_optwin_window(2_000);
    let experiment = Table1Experiment::SuddenBinary;

    let mut optwin_f1 = Vec::new();
    let mut adwin_f1 = Vec::new();
    for seed in 0..3u64 {
        let (errors, schedule) = experiment.build_error_sequence(seed, 10_000);
        let mut optwin = factory.build(DetectorKind::OptwinRho(500));
        let mut adwin = factory.build(DetectorKind::Adwin);
        optwin_f1.push(
            run_detector_on_sequence(optwin.as_mut(), &errors, &schedule)
                .outcome
                .f1(),
        );
        adwin_f1.push(
            run_detector_on_sequence(adwin.as_mut(), &errors, &schedule)
                .outcome
                .f1(),
        );
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&optwin_f1) >= mean(&adwin_f1) - 1e-9,
        "OPTWIN {:?} vs ADWIN {:?}",
        optwin_f1,
        adwin_f1
    );
    assert!(mean(&optwin_f1) > 0.7, "OPTWIN F1 too low: {optwin_f1:?}");
}

/// Prequential Naive Bayes + OPTWIN adaptation on AGRAWAL recovers accuracy
/// after each function switch.
#[test]
fn agrawal_classification_pipeline_with_adaptation() {
    let schedule = DriftSchedule::every(5_000, 15_000, 1);
    let concepts: Vec<Box<dyn InstanceStream + Send>> = vec![
        Box::new(Agrawal::new(AgrawalFunction::F1, 1)),
        Box::new(Agrawal::new(AgrawalFunction::F4, 2)),
        Box::new(Agrawal::new(AgrawalFunction::F7, 3)),
    ];
    let mut stream = MultiConceptStream::new(concepts, schedule.clone(), 7);

    let detector = Optwin::new(
        OptwinConfig::builder()
            .robustness(0.5)
            .max_window(2_000)
            .build()
            .unwrap(),
    )
    .unwrap();
    let learner = NaiveBayes::new(&stream.schema(), stream.n_classes());
    let mut adaptive = AdaptiveLearner::new(learner, detector);
    let report = adaptive.run(&mut stream, 15_000);

    assert!(report.accuracy > 0.6, "accuracy = {}", report.accuracy);
    // Score the detections against the ground truth: at least one of the two
    // drifts must be caught, with zero or very few false positives.
    let outcome = score_detections(&schedule, &report.detections);
    assert!(
        outcome.true_positives >= 1,
        "detections: {:?}",
        report.detections
    );
    assert!(
        outcome.false_positives <= 2,
        "detections: {:?}",
        report.detections
    );
}

/// The Table 2 cell runner produces consistent accuracy numbers for the same
/// seed and improves on the no-detector baseline for a drifting stream.
#[test]
fn classification_cell_reproducibility_and_improvement() {
    let mut factory = DetectorFactory::with_optwin_window(1_000);
    let a = run_classification_cell(
        ClassificationExperiment::SuddenStagger,
        Some(DetectorKind::OptwinRho(500)),
        &mut factory,
        Some(10_000),
        9,
    );
    let b = run_classification_cell(
        ClassificationExperiment::SuddenStagger,
        Some(DetectorKind::OptwinRho(500)),
        &mut factory,
        Some(10_000),
        9,
    );
    assert_eq!(a.accuracy, b.accuracy, "same seed must reproduce exactly");
    assert_eq!(a.detections, b.detections);

    let baseline = run_classification_cell(
        ClassificationExperiment::SuddenStagger,
        None,
        &mut factory,
        Some(10_000),
        9,
    );
    assert!(
        a.accuracy > baseline.accuracy,
        "{} vs {}",
        a.accuracy,
        baseline.accuracy
    );
}

/// Detectors are usable through the trait object returned by the factory and
/// never report drifts on an all-zero (perfect learner) error stream.
#[test]
fn perfect_learner_never_triggers_any_detector() {
    let factory = DetectorFactory::with_optwin_window(500);
    for kind in DetectorKind::paper_lineup() {
        let mut detector = factory.build(kind);
        for _ in 0..5_000 {
            let status = detector.add_element(0.0);
            assert_ne!(
                status,
                optwin::DriftStatus::Drift,
                "{} fired on a perfect error stream",
                detector.name()
            );
        }
    }
}
