//! Golden-corpus compatibility, corruption-fuzzing and size-regression
//! suite for the engine snapshot wire formats (v1–v4).
//!
//! A heterogeneous 8-detector fleet (one stream per [`DetectorSpec`] kind)
//! is fed a fixed deterministic prefix; the resulting snapshots — one
//! checked-in fixture per wire format under `tests/fixtures/snapshots/` —
//! must keep restoring **bit-exactly** forever: every fixture, restored
//! into a fresh engine and fed the remaining stream, must produce exactly
//! the drift decisions of an uninterrupted reference engine. Regenerate the
//! corpus (only after a deliberate, versioned format change) with:
//!
//! ```text
//! cargo test --test snapshot_compat regenerate_golden_corpus -- --ignored
//! ```
//!
//! The suite also fuzzes the v4 binary blob layer (truncation, checksum
//! flips, bad magic, count mismatches, invalid base64 — all must surface as
//! [`EngineError::InvalidSnapshot`] with the stream and field named, never
//! a panic) and guards the headline size win: the v4 snapshot of a fixed
//! 64-stream fleet must stay at or below **40 %** of its v3 size.
//!
//! Composite detectors add a fixture of their own: `v4-cascade.json`
//! snapshots a cascade/ensemble fleet with the pilot cascade captured
//! **mid-escalation** (live confirmer, warm replay ring) and still
//! self-reports wire format 4 — composites are explicitly not a format
//! generation (see the `cascade_fixture` module at the bottom).
//!
//! Wire format **v5** is a checkpoint *directory*, not a single file: the
//! checked-in `v5/` fixture holds a manifest, a base, a delta-overlay chain
//! and a write-ahead-log tail, and must keep **recovering** (base → deltas
//! → WAL replay) into a bit-exact engine forever. Its tests recover from a
//! scratch copy, since recovery itself checkpoints into the directory.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use optwin::engine::EngineError;
use optwin::{
    load_checkpoint_dir, CheckpointPolicy, DetectorSpec, DriftEvent, EngineBuilder, EngineHandle,
    EngineSnapshot, EventSink, HibernationPolicy, MemorySink, SnapshotEncoding,
};

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

// ---------------------------------------------------------------------------
// The corpus fleet: 8 streams, one per detector kind, deterministic input
// ---------------------------------------------------------------------------

const STREAMS: u64 = 8;
const TOTAL: usize = 4_000;
/// The prefix length the checked-in fixtures were generated from. Changing
/// it (or [`element`], or [`spec_of`]) invalidates the corpus — regenerate.
const CUT: usize = 2_500;

fn spec_of(stream: u64) -> DetectorSpec {
    let text = match stream % 8 {
        0 => "optwin:rho=0.5,w_max=600",
        1 => "adwin",
        2 => "ddm",
        3 => "eddm",
        4 => "stepd",
        5 => "ecdd",
        6 => "page_hinkley",
        _ => "kswin:window_size=120,stat_size=25,alpha=0.0001",
    };
    text.parse().expect("valid spec string")
}

/// The `i`-th element of a stream: every stream degrades at its own drift
/// point; binary-only detectors get Bernoulli indicators, the rest
/// real-valued losses.
fn element(stream: u64, i: usize) -> f64 {
    let drift_at = 2_000 + (stream as usize * 173) % 1_100;
    let p = if i < drift_at { 0.06 } else { 0.55 };
    let u = jitter(stream.wrapping_mul(0x5150_5150) ^ i as u64) + 0.5;
    if spec_of(stream).binary_only() {
        f64::from(u < p)
    } else {
        (p + 0.4 * (u - 0.5)).clamp(0.0, 1.0)
    }
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/snapshots")
}

fn fixture_path(version: u64) -> PathBuf {
    fixtures_dir().join(format!("v{version}.json"))
}

fn hibernated_fixture_path() -> PathBuf {
    fixtures_dir().join("v4-hibernated.json")
}

/// The v5 fixture is a whole checkpoint **directory** (manifest + base +
/// delta chain + WAL tail), covering `0..V5_CHECKPOINTED` through
/// checkpoints and `V5_CHECKPOINTED..CUT` through the log alone.
fn v5_fixture_dir() -> PathBuf {
    fixtures_dir().join("v5")
}

const V5_CHECKPOINTED: usize = 2_000;

/// Copies the v5 fixture into a scratch directory: recovery checkpoints and
/// garbage-collects *into* the directory it recovers, and the checked-in
/// corpus must never be touched.
fn v5_scratch_copy(name: &str) -> PathBuf {
    let scratch =
        std::env::temp_dir().join(format!("optwin-v5-fixture-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let entries = std::fs::read_dir(v5_fixture_dir()).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} — run the ignored `regenerate_golden_corpus` \
             test to rebuild the corpus: {e}",
            v5_fixture_dir().display()
        )
    });
    for entry in entries {
        let entry = entry.expect("fixture dir entry");
        std::fs::copy(entry.path(), scratch.join(entry.file_name())).expect("copy fixture file");
    }
    scratch
}

fn build_fleet(restore: Option<EngineSnapshot>, factory: bool) -> (EngineHandle, Arc<MemorySink>) {
    build_fleet_with(restore, factory, None)
}

fn build_fleet_with(
    restore: Option<EngineSnapshot>,
    factory: bool,
    hibernation: Option<HibernationPolicy>,
) -> (EngineHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    if let Some(policy) = hibernation {
        builder = builder.hibernation(policy);
    }
    if factory {
        // The v1 fixture embeds no specs; restoring it needs a factory that
        // knows the fleet layout — exactly the pre-v2 contract.
        builder = builder.factory(|stream| spec_of(stream).build().expect("valid spec"));
    }
    match restore {
        Some(snapshot) => builder = builder.restore(snapshot),
        None => {
            for stream in 0..STREAMS {
                builder = builder.stream_spec(stream, spec_of(stream));
            }
        }
    }
    (builder.build().expect("valid engine"), sink)
}

fn feed(handle: &EngineHandle, from: usize, to: usize) {
    let mut records = Vec::new();
    for start in (from..to).step_by(250) {
        let end = (start + 250).min(to);
        records.clear();
        for stream in 0..STREAMS {
            for i in start..end {
                records.push((stream, element(stream, i)));
            }
        }
        handle.submit(&records).expect("engine running");
    }
    handle.flush().expect("no ingestion errors");
}

fn canonical(mut events: Vec<DriftEvent>) -> Vec<DriftEvent> {
    events.sort_unstable_by_key(|e| (e.stream, e.seq));
    events
}

/// The uninterrupted reference: the full run's events, split at [`CUT`].
fn reference_events() -> (Vec<DriftEvent>, Vec<DriftEvent>) {
    let (handle, sink) = build_fleet(None, false);
    feed(&handle, 0, TOTAL);
    let events = canonical(sink.drain());
    handle.shutdown().expect("clean shutdown");
    events.into_iter().partition(|e| (e.seq as usize) < CUT)
}

// ---------------------------------------------------------------------------
// Corpus regeneration (checked-in fixtures; run explicitly with --ignored)
// ---------------------------------------------------------------------------

/// Writes the four golden fixtures. v3 and v4 are genuine snapshots of the
/// same engine state in both layouts; v2 and v1 are the historically exact
/// reductions of the v3 payload (v2 predates `shard`, v1 predates `spec`),
/// which is precisely how those writers laid out the wire.
#[test]
#[ignore = "regenerates the checked-in golden corpus"]
fn regenerate_golden_corpus() {
    let (handle, _sink) = build_fleet(None, false);
    feed(&handle, 0, CUT);
    let v3 = handle
        .snapshot_with(SnapshotEncoding::Json)
        .expect("snapshot-capable");
    let v4 = handle
        .snapshot_with(SnapshotEncoding::Binary)
        .expect("snapshot-capable");
    handle.shutdown().expect("clean shutdown");
    assert_eq!(v3.version, 3);
    assert_eq!(v4.version, 4);

    let mut v2 = v3.clone();
    v2.version = 2;
    for stream in &mut v2.streams {
        stream.shard = None;
    }
    let mut v1 = v2.clone();
    v1.version = 1;
    for stream in &mut v1.streams {
        stream.spec = None;
    }

    std::fs::create_dir_all(fixtures_dir()).expect("fixtures dir");
    for (version, snapshot) in [(1, &v1), (2, &v2), (3, &v3), (4, &v4)] {
        std::fs::write(fixture_path(version), snapshot.to_json()).expect("write fixture");
    }

    // The hibernated variant: the same fleet run under the forced policy,
    // so every stream is asleep when the snapshot is taken. Deliberately
    // still wire format v4 — hibernation adds one optional key per sleeping
    // stream, not a format generation.
    let (handle, _sink) =
        build_fleet_with(None, false, Some(HibernationPolicy::cold_after_flushes(0)));
    feed(&handle, 0, CUT);
    let hibernated = handle.snapshot_compact().expect("snapshot-capable");
    handle.shutdown().expect("clean shutdown");
    assert_eq!(hibernated.version, 4);
    assert!(hibernated.streams.iter().all(|s| s.hibernated));
    std::fs::write(hibernated_fixture_path(), hibernated.to_json()).expect("write fixture");

    // The v5 fixture: the same fleet run *with durability on*. Flushing
    // every 500 elements under `every_flushes(1)` leaves a generation-0
    // base plus four delta overlays (the infinite compact ratio keeps the
    // chain); the final `V5_CHECKPOINTED..CUT` window is processed — the
    // stats barrier proves it — but never checkpointed, so it survives only
    // in the write-ahead log, exactly like a crash. The directory is
    // checked in verbatim: manifest, base, deltas, WAL segments.
    let v5_dir = v5_fixture_dir();
    let _ = std::fs::remove_dir_all(&v5_dir);
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .checkpoint(
            &v5_dir,
            CheckpointPolicy::every_flushes(1).compact_ratio(f64::INFINITY),
        );
    for stream in 0..STREAMS {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let handle = builder.build().expect("valid engine");
    for start in (0..V5_CHECKPOINTED).step_by(500) {
        let mut records = Vec::new();
        for stream in 0..STREAMS {
            for i in start..start + 500 {
                records.push((stream, element(stream, i)));
            }
        }
        handle.submit(&records).expect("engine running");
        handle.flush().expect("no ingestion errors");
    }
    let mut tail = Vec::new();
    for stream in 0..STREAMS {
        for i in V5_CHECKPOINTED..CUT {
            tail.push((stream, element(stream, i)));
        }
    }
    handle.submit(&tail).expect("engine running");
    let _ = handle.stats().expect("engine running");
    handle.shutdown().expect("clean shutdown");

    let merged = load_checkpoint_dir(&v5_dir).expect("fixture recovers");
    assert!(
        merged
            .streams
            .iter()
            .all(|s| s.seq == V5_CHECKPOINTED as u64),
        "v5 checkpoints must cover exactly the flushed prefix"
    );
}

// ---------------------------------------------------------------------------
// Golden-corpus compatibility
// ---------------------------------------------------------------------------

/// Every checked-in fixture — one per wire format generation — restores
/// into an engine whose subsequent drift decisions are identical to a
/// freshly-built reference that never stopped.
#[test]
fn golden_corpus_restores_bit_exact() {
    let (_early, expected_late) = reference_events();
    assert!(
        !expected_late.is_empty(),
        "the corpus workload must drift after the cut"
    );

    for version in 1..=4u64 {
        let path = fixture_path(version);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} — run the ignored \
                 `regenerate_golden_corpus` test to rebuild the corpus: {e}",
                path.display()
            )
        });
        let snapshot = EngineSnapshot::from_json(&text)
            .unwrap_or_else(|e| panic!("fixture v{version} must parse: {e}"));
        assert_eq!(snapshot.version, version, "fixture v{version} self-reports");
        assert_eq!(snapshot.stream_count(), STREAMS as usize);
        assert_eq!(snapshot.is_self_describing(), version >= 2);
        assert_eq!(snapshot.records_placement(), version >= 3);

        // v1 predates embedded specs: restore needs the fleet factory.
        let (restored, sink) = build_fleet(Some(snapshot), version == 1);
        let stats = restored.stats().expect("engine running");
        assert_eq!(stats.streams, STREAMS as usize, "v{version}");
        assert_eq!(stats.elements, STREAMS * CUT as u64, "v{version}");
        feed(&restored, CUT, TOTAL);
        let late = canonical(sink.drain());
        restored.shutdown().expect("clean shutdown");
        assert_eq!(
            late, expected_late,
            "fixture v{version} must resume with identical decisions"
        );
    }
}

/// The hibernated golden fixture — the corpus fleet snapshotted while every
/// stream was asleep under the forced policy — restores bit-exactly on
/// **both** load paths: a hibernating builder re-creates the streams still
/// asleep (no detector materialized until its first record), and a plain
/// builder wakes everything eagerly. Either way the resumed fleet's
/// decisions are identical to the uninterrupted reference.
///
/// This test is also the explicit no-wire-bump assertion: hibernation adds
/// one optional `hibernated` key per sleeping stream and nothing else, so
/// the fixture still self-reports **version 4** and parses with the same
/// codec as the all-awake `v4.json` (whose bytes contain no trace of the
/// key at all).
#[test]
fn hibernated_fixture_restores_on_both_load_paths() {
    let (_early, expected_late) = reference_events();

    let path = hibernated_fixture_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} — run the ignored \
             `regenerate_golden_corpus` test to rebuild the corpus: {e}",
            path.display()
        )
    });
    assert!(
        text.contains("\"hibernated\""),
        "the hibernated fixture must mark its sleeping streams"
    );
    let awake_text = std::fs::read_to_string(fixture_path(4)).expect("v4 fixture present");
    assert!(
        !awake_text.contains("hibernated"),
        "an all-awake v4 snapshot must not mention hibernation at all"
    );

    let snapshot = EngineSnapshot::from_json(&text).expect("fixture parses");
    assert_eq!(
        snapshot.version, 4,
        "hibernation must not bump the wire format"
    );
    assert_eq!(snapshot.stream_count(), STREAMS as usize);
    assert!(
        snapshot.streams.iter().all(|s| s.hibernated),
        "every corpus stream was asleep at capture"
    );

    // Load path 1: a hibernating builder keeps the fleet asleep...
    let (restored, sink) = build_fleet_with(
        Some(snapshot.clone()),
        false,
        Some(HibernationPolicy::default()),
    );
    let stats = restored.stats().expect("engine running");
    assert_eq!(stats.hibernated_streams(), STREAMS as usize);
    assert_eq!(stats.elements, STREAMS * CUT as u64);
    // ...until records arrive and wake the streams transparently.
    feed(&restored, CUT, TOTAL);
    let late = canonical(sink.drain());
    assert_eq!(
        restored.stats().expect("engine running").rehydrations(),
        STREAMS
    );
    restored.shutdown().expect("clean shutdown");
    assert_eq!(
        late, expected_late,
        "asleep load path must resume bit-exact"
    );

    // Load path 2: a plain builder materializes every detector eagerly.
    let (restored, sink) = build_fleet(Some(snapshot), false);
    let stats = restored.stats().expect("engine running");
    assert_eq!(stats.hibernated_streams(), 0);
    feed(&restored, CUT, TOTAL);
    let late = canonical(sink.drain());
    restored.shutdown().expect("clean shutdown");
    assert_eq!(late, expected_late, "awake load path must resume bit-exact");
}

/// The v5 checkpoint-directory fixture recovers bit-exactly: base → delta
/// overlays → WAL replay, then the remaining stream, must reproduce the
/// uninterrupted reference's events from the last checkpoint's coverage
/// onward (the recovered engine re-emits the replayed `2000..2500` window —
/// that is the durability contract, not an artifact).
#[test]
fn v5_checkpoint_fixture_recovers_bit_exact() {
    let (early, late) = reference_events();
    let mut expected: Vec<DriftEvent> = early
        .into_iter()
        .filter(|e| e.seq as usize >= V5_CHECKPOINTED)
        .collect();
    expected.extend(late);
    let expected = canonical(expected);
    assert!(
        !expected.is_empty(),
        "the corpus workload must drift after the checkpointed prefix"
    );

    // The checked-in directory self-reports v5 and carries all three file
    // classes the format defines.
    let manifest =
        std::fs::read_to_string(v5_fixture_dir().join("MANIFEST.json")).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} — run the ignored `regenerate_golden_corpus` \
                 test to rebuild the corpus: {e}",
                v5_fixture_dir().display()
            )
        });
    assert!(manifest.contains("\"version\":5"), "{manifest}");
    let names: Vec<String> = std::fs::read_dir(v5_fixture_dir())
        .expect("fixture dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().any(|n| n.starts_with("base-")));
    assert!(
        names.iter().filter(|n| n.starts_with("delta-")).count() >= 3,
        "the fixture must exercise a real overlay chain: {names:?}"
    );
    assert!(names.iter().any(|n| n.starts_with("wal-")));

    let scratch = v5_scratch_copy("recover");
    let merged = load_checkpoint_dir(&scratch).expect("fixture loads");
    assert_eq!(merged.stream_count(), STREAMS as usize);
    assert!(merged
        .streams
        .iter()
        .all(|s| s.seq == V5_CHECKPOINTED as u64));

    let sink = Arc::new(MemorySink::new());
    let recovered = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .recover_from_dir(&scratch)
        .expect("fixture recovers")
        .build()
        .expect("valid engine");
    let stats = recovered.stats().expect("engine running");
    assert_eq!(
        stats.elements,
        STREAMS * CUT as u64,
        "WAL replay must roll every stream forward to the crash point"
    );
    feed(&recovered, CUT, TOTAL);
    let events = canonical(sink.drain());
    recovered.shutdown().expect("clean shutdown");
    assert_eq!(
        events, expected,
        "fixture v5 must recover with identical decisions"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Corruption fuzzing against the checked-in v5 fixture: a truncated delta
/// overlay, a flipped WAL payload byte and a missing base must each surface
/// as [`EngineError::InvalidSnapshot`] — never a panic — from a scratch
/// copy of the corpus directory.
#[test]
fn corrupted_v5_fixture_fails_recovery_cleanly() {
    let recovery_error = |dir: &Path| -> EngineError {
        match EngineBuilder::new().shards(2).recover_from_dir(dir) {
            Err(error) => error,
            Ok(builder) => builder
                .build()
                .expect_err("corrupted fixture must fail recovery"),
        }
    };
    let find = |dir: &Path, prefix: &str| -> PathBuf {
        std::fs::read_dir(dir)
            .expect("scratch dir")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix))
            })
            .max()
            .unwrap_or_else(|| panic!("fixture has no `{prefix}*` file"))
    };

    let scratch = v5_scratch_copy("truncated-delta");
    let delta = find(&scratch, "delta-");
    let text = std::fs::read_to_string(&delta).expect("delta readable");
    std::fs::write(&delta, &text[..text.len() / 2]).expect("truncate delta");
    assert!(
        matches!(recovery_error(&scratch), EngineError::InvalidSnapshot(_)),
        "truncated overlay"
    );
    let _ = std::fs::remove_dir_all(&scratch);

    let scratch = v5_scratch_copy("flipped-wal");
    let wal = find(&scratch, "wal-");
    let mut bytes = std::fs::read(&wal).expect("segment readable");
    assert!(bytes.len() > 31, "the fixture's WAL tail holds a batch");
    bytes[30] ^= 0x5a; // past the 17-byte segment header + 9-byte frame header
    std::fs::write(&wal, &bytes).expect("flip WAL byte");
    let error = recovery_error(&scratch);
    assert!(
        matches!(&error, EngineError::InvalidSnapshot(m) if m.contains("checksum")),
        "flipped WAL byte must fail the frame checksum, got {error:?}"
    );
    let _ = std::fs::remove_dir_all(&scratch);

    let scratch = v5_scratch_copy("missing-base");
    std::fs::remove_file(find(&scratch, "base-")).expect("remove base");
    let error = recovery_error(&scratch);
    assert!(
        matches!(&error, EngineError::InvalidSnapshot(m) if m.contains("base")),
        "missing base must be named, got {error:?}"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A v4 snapshot taken right now round-trips through JSON and restores
/// bit-exactly — the live-format twin of the corpus test (and the path that
/// will mint the v5 fixture one day).
#[test]
fn live_v4_snapshot_round_trips() {
    let (_early, expected_late) = reference_events();
    let (handle, _sink) = build_fleet(None, false);
    feed(&handle, 0, CUT);
    let snapshot = handle.snapshot_compact().expect("snapshot-capable");
    handle.shutdown().expect("clean shutdown");
    assert_eq!(snapshot.version, 4);
    assert!(snapshot.is_self_describing());

    let snapshot = EngineSnapshot::from_json(&snapshot.to_json()).expect("well-formed JSON");
    let (restored, sink) = build_fleet(Some(snapshot), false);
    feed(&restored, CUT, TOTAL);
    let late = canonical(sink.drain());
    restored.shutdown().expect("clean shutdown");
    assert_eq!(late, expected_late);
}

// ---------------------------------------------------------------------------
// Corruption fuzzing at the engine level
// ---------------------------------------------------------------------------

/// Applies `mutate` to the OPTWIN stream's `window` blob inside a freshly
/// taken v4 snapshot and returns the restore error the builder reports.
fn restore_error_after(mutate: impl Fn(&str) -> String) -> EngineError {
    let (handle, _sink) = build_fleet(None, false);
    feed(&handle, 0, 700);
    let mut snapshot = handle.snapshot_compact().expect("snapshot-capable");
    handle.shutdown().expect("clean shutdown");

    let state = &mut snapshot
        .streams
        .iter_mut()
        .find(|s| s.detector == "OPTWIN")
        .expect("the fleet has an OPTWIN stream")
        .state;
    let serde::Value::Object(fields) = state else {
        panic!("detector state must be an object")
    };
    let mut mutated = false;
    for (name, value) in fields.iter_mut() {
        if name == "window" {
            let serde::Value::Str(blob) = value else {
                panic!("v4 OPTWIN window must be a blob string")
            };
            *value = serde::Value::Str(mutate(blob));
            mutated = true;
        }
    }
    assert!(mutated, "no window field found to corrupt");

    // Through the JSON wire, exactly as a real restart would hit it.
    let snapshot = EngineSnapshot::from_json(&snapshot.to_json())
        .expect("corruption lives inside a JSON string; the envelope still parses");
    EngineBuilder::new()
        .shards(2)
        .restore(snapshot)
        .build()
        .expect_err("corrupted blob must fail the restore")
}

/// Every corruption class — truncated blobs, flipped checksum bytes, bad
/// magic, element-count mismatches, invalid base64 — surfaces as
/// [`EngineError::InvalidSnapshot`] whose message names the stream and the
/// offending field (a path-like context), and never panics.
#[test]
fn corrupted_v4_blobs_fail_restores_cleanly() {
    use optwin::core::snapshot::{frame_checksum, from_base64, to_base64};

    type Mutation = Box<dyn Fn(&str) -> String>;
    let cases: Vec<(&str, Mutation, &str)> = vec![
        (
            "truncated blob",
            Box::new(|blob: &str| {
                let mut bytes = from_base64(blob).expect("fixture blob decodes");
                bytes.truncate(bytes.len() - 16);
                to_base64(&bytes)
            }),
            "mismatch",
        ),
        (
            "flipped checksum byte",
            Box::new(|blob: &str| {
                let mut bytes = from_base64(blob).expect("fixture blob decodes");
                bytes[10] ^= 0x5a;
                to_base64(&bytes)
            }),
            "checksum mismatch",
        ),
        (
            "bad magic",
            Box::new(|blob: &str| {
                let mut bytes = from_base64(blob).expect("fixture blob decodes");
                bytes[..4].copy_from_slice(b"NOPE");
                to_base64(&bytes)
            }),
            "bad magic",
        ),
        (
            "element count mismatch",
            Box::new(|blob: &str| {
                // Re-sealed with a valid checksum, so the count validation
                // itself (not the checksum) must catch the forgery.
                let mut bytes = from_base64(blob).expect("fixture blob decodes");
                let count = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
                bytes[6..10].copy_from_slice(&(count + 7).to_le_bytes());
                let checksum = frame_checksum(&bytes);
                bytes[10..14].copy_from_slice(&checksum.to_le_bytes());
                to_base64(&bytes)
            }),
            "element count mismatch",
        ),
        (
            "invalid base64",
            Box::new(|blob: &str| format!("{}~~~~", &blob[..blob.len() - 4])),
            "base64",
        ),
    ];

    for (label, mutate, needle) in cases {
        let error = restore_error_after(mutate);
        let EngineError::InvalidSnapshot(message) = &error else {
            panic!("{label}: expected InvalidSnapshot, got {error:?}")
        };
        let text = error.to_string();
        assert!(
            text.contains("stream"),
            "{label}: no stream context: {text}"
        );
        assert!(
            message.contains("window"),
            "{label}: no field context: {text}"
        );
        assert!(
            text.contains(needle),
            "{label}: `{text}` missing `{needle}`"
        );
    }
}

// ---------------------------------------------------------------------------
// Size regression guard
// ---------------------------------------------------------------------------

/// The headline claim of wire format v4, pinned as a regression test: for a
/// fixed 64-stream heterogeneous fleet monitoring binary error streams (the
/// paper's primary input), the v4 snapshot payload is at most **40 %** of
/// the v3 payload. Both sizes are printed so CI logs track the ratio over
/// time.
#[test]
fn v4_snapshot_is_at_most_40_percent_of_v3() {
    const GUARD_STREAMS: u64 = 64;
    const GUARD_ELEMENTS: usize = 2_500;

    let guard_spec = |stream: u64| -> DetectorSpec {
        let text = match stream % 8 {
            0 => "optwin:rho=0.5,w_max=2000",
            1 => "adwin",
            2 => "ddm",
            3 => "eddm",
            4 => "stepd",
            5 => "ecdd",
            6 => "page_hinkley",
            _ => "kswin:window_size=300,stat_size=30,alpha=0.0001",
        };
        text.parse().expect("valid spec string")
    };

    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    for stream in 0..GUARD_STREAMS {
        builder = builder.stream_spec(stream, guard_spec(stream));
    }
    let handle = builder.build().expect("valid engine");

    // Binary error indicators for every stream: all 8 kinds accept them,
    // and they are what the paper's detectors monitor in production.
    let mut records = Vec::new();
    for start in (0..GUARD_ELEMENTS).step_by(500) {
        records.clear();
        for stream in 0..GUARD_STREAMS {
            for i in start..(start + 500).min(GUARD_ELEMENTS) {
                let p = 0.04 + (stream % 7) as f64 * 0.03;
                records.push((
                    stream,
                    f64::from(jitter(stream.wrapping_mul(0xABCD_EF12) ^ i as u64) + 0.5 < p),
                ));
            }
        }
        handle.submit(&records).expect("engine running");
    }
    handle.flush().expect("no ingestion errors");

    let v3 = handle
        .snapshot_with(SnapshotEncoding::Json)
        .expect("snapshot-capable")
        .to_json();
    let v4 = handle
        .snapshot_compact()
        .expect("snapshot-capable")
        .to_json();

    println!(
        "snapshot size guard: v3 = {} bytes, v4 = {} bytes, ratio = {:.1}%",
        v3.len(),
        v4.len(),
        v4.len() as f64 / v3.len() as f64 * 100.0
    );
    assert!(
        v4.len() * 100 <= v3.len() * 40,
        "v4 ({} bytes) exceeds 40% of v3 ({} bytes)",
        v4.len(),
        v3.len()
    );

    // The compact snapshot is not just small — it restores to the same
    // engine: both layouts, fed the same suffix, emit identical events.
    let run_suffix = |snapshot: EngineSnapshot| -> Vec<DriftEvent> {
        let sink = Arc::new(MemorySink::new());
        let restored = EngineBuilder::new()
            .shards(3)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .restore(snapshot)
            .build()
            .expect("valid engine");
        let records: Vec<(u64, f64)> = (0..GUARD_STREAMS)
            .flat_map(|stream| {
                (0..300).map(move |i| {
                    (
                        stream,
                        f64::from(
                            jitter(stream.wrapping_mul(0xABCD_EF12) ^ (GUARD_ELEMENTS + i) as u64)
                                + 0.5
                                < 0.6,
                        ),
                    )
                })
            })
            .collect();
        restored.submit(&records).expect("engine running");
        restored.flush().expect("no ingestion errors");
        let events = canonical(sink.drain());
        restored.shutdown().expect("clean shutdown");
        events
    };
    let from_v3 = run_suffix(EngineSnapshot::from_json(&v3).expect("v3 parses"));
    let from_v4 = run_suffix(EngineSnapshot::from_json(&v4).expect("v4 parses"));
    assert_eq!(from_v3, from_v4, "both layouts restore the same engine");
    assert!(
        !from_v4.is_empty(),
        "the 0.6-error suffix must trigger detections"
    );
    handle.shutdown().expect("clean shutdown");
}

// ---------------------------------------------------------------------------
// Composite golden fixture: a cascade captured mid-escalation
// ---------------------------------------------------------------------------

/// The composite half of the corpus: a three-stream fleet — two cascades
/// and a voting ensemble, registered purely through nested spec strings —
/// snapshotted at the exact element where the pilot cascade's confirmer is
/// **live** (escalated past the drift point, drift not yet confirmed). The
/// checked-in `v4-cascade.json` must keep restoring bit-exactly forever,
/// and must keep self-reporting wire format **4**: composites serialize
/// through the existing codec — nested child state inside the detector
/// blob — and are explicitly *not* a format generation. Regenerate (only
/// after a deliberate, versioned change) with:
///
/// ```text
/// cargo test --test snapshot_compat regenerate_cascade_fixture -- --ignored
/// ```
mod cascade_fixture {
    use super::*;
    use optwin::{Cascade, DetectorSpec as Spec, DriftDetector};

    const TOTAL: usize = 3_500;
    const DRIFT_AT: usize = 1_700;

    fn path() -> PathBuf {
        fixtures_dir().join("v4-cascade.json")
    }

    /// The pilot stream's spec: the stream whose mid-escalation moment
    /// decides the snapshot cut.
    const PILOT: &str = "cascade:guard=ddm,confirm=[optwin:w_max=600],replay=256,cooldown=256";

    fn specs() -> Vec<(u64, Spec)> {
        [
            PILOT,
            "ensemble:vote=2,members=[ddm|ecdd|page_hinkley]",
            "cascade:guard=page_hinkley,confirm=adwin,replay=512",
        ]
        .iter()
        .enumerate()
        .map(|(stream, text)| (stream as u64, text.parse().expect("valid composite spec")))
        .collect()
    }

    /// Bernoulli error indicators, rate 0.06 jumping to 0.5 at
    /// [`DRIFT_AT`], decorrelated across the three streams.
    fn element(stream: u64, i: usize) -> f64 {
        let p = if i < DRIFT_AT { 0.06 } else { 0.5 };
        let u = jitter(0x0CA5_CADE ^ stream.wrapping_mul(0x9E37_79B1) ^ i as u64) + 0.5;
        f64::from(u < p)
    }

    /// A standalone replica of the pilot stream's cascade — the concrete
    /// type, so the escalation flag is observable.
    fn pilot_replica() -> Cascade {
        match PILOT.parse::<Spec>().expect("valid composite spec") {
            Spec::Cascade { config } => Cascade::new(config).expect("valid cascade config"),
            _ => unreachable!("the pilot spec is a cascade"),
        }
    }

    /// The snapshot cut: the first element past the drift point on which
    /// the pilot cascade is escalated — confirmer live, warm ring, dormant
    /// flag down. Pure function of the deterministic stream, so the
    /// regeneration test and the compatibility test always agree.
    fn mid_escalation_cut() -> usize {
        let mut replica = pilot_replica();
        for i in 0..TOTAL {
            replica.add_element(element(0, i));
            if i >= DRIFT_AT && replica.is_escalated() {
                return i + 1;
            }
        }
        panic!("the pilot cascade never escalated past the drift point");
    }

    fn build(restore: Option<EngineSnapshot>) -> (EngineHandle, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let mut builder = EngineBuilder::new()
            .shards(2)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
        match restore {
            Some(snapshot) => builder = builder.restore(snapshot),
            None => {
                for (stream, spec) in specs() {
                    builder = builder.stream_spec(stream, spec);
                }
            }
        }
        (builder.build().expect("valid engine"), sink)
    }

    fn feed(handle: &EngineHandle, from: usize, to: usize) {
        let streams = specs().len() as u64;
        let mut records = Vec::new();
        for start in (from..to).step_by(250) {
            let end = (start + 250).min(to);
            records.clear();
            for stream in 0..streams {
                for i in start..end {
                    records.push((stream, element(stream, i)));
                }
            }
            handle.submit(&records).expect("engine running");
        }
        handle.flush().expect("no ingestion errors");
    }

    /// Writes the composite fixture; see the module docs.
    #[test]
    #[ignore = "regenerates the checked-in cascade fixture"]
    fn regenerate_cascade_fixture() {
        let cut = mid_escalation_cut();
        let (handle, _sink) = build(None);
        feed(&handle, 0, cut);
        let snapshot = handle
            .snapshot_with(SnapshotEncoding::Binary)
            .expect("snapshot-capable");
        handle.shutdown().expect("clean shutdown");
        assert_eq!(
            snapshot.version, 4,
            "composites must not bump the wire format"
        );
        assert_eq!(snapshot.stream_count(), specs().len());
        std::fs::create_dir_all(fixtures_dir()).expect("fixtures dir");
        std::fs::write(path(), snapshot.to_json()).expect("write fixture");
    }

    /// The checked-in fixture parses with the unchanged v4 codec, restores
    /// a fleet whose pilot cascade is verifiably mid-escalation, and the
    /// resumed fleet's decisions are byte-identical to an uninterrupted
    /// reference — the cascade confirms the pending drift exactly where it
    /// always would have.
    #[test]
    fn cascade_fixture_restores_mid_escalation_bit_exact() {
        let cut = mid_escalation_cut();
        // Double-check what "mid-escalation" means at this cut: a live
        // confirmer with the drift still unconfirmed.
        {
            let mut replica = pilot_replica();
            for i in 0..cut {
                replica.add_element(element(0, i));
            }
            assert!(replica.is_escalated(), "the cut lands mid-escalation");
            assert_eq!(
                replica.drifts_detected(),
                0,
                "the pending drift is unconfirmed at the cut"
            );
        }

        let (handle, sink) = build(None);
        feed(&handle, 0, TOTAL);
        let all = canonical(sink.drain());
        handle.shutdown().expect("clean shutdown");
        let expected: Vec<DriftEvent> = all.into_iter().filter(|e| e.seq as usize >= cut).collect();
        assert!(
            !expected.is_empty(),
            "the fleet must confirm drifts after the cut"
        );

        let text = std::fs::read_to_string(path()).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} — run the ignored \
                 `regenerate_cascade_fixture` test to rebuild it: {e}",
                path().display()
            )
        });
        let snapshot = EngineSnapshot::from_json(&text).expect("fixture parses");
        assert_eq!(
            snapshot.version, 4,
            "composite detectors must not bump the snapshot wire format"
        );
        assert_eq!(snapshot.stream_count(), specs().len());

        let (restored, sink) = build(Some(snapshot));
        feed(&restored, cut, TOTAL);
        let events = canonical(sink.drain());
        restored.shutdown().expect("clean shutdown");
        assert_eq!(
            events, expected,
            "the mid-escalation fixture must resume with identical decisions"
        );
    }
}
