//! Crash-recovery harness for the durability subsystem (checkpoint wire
//! format v5): delta checkpoints, the per-shard write-ahead log, and
//! [`EngineBuilder::recover_from_dir`].
//!
//! The headline property is **bit-exact resume**: an engine killed
//! mid-ingest — by a real `std::process::abort()` in a re-executed child
//! process, or by an in-process worker panic injected through a poisoned
//! detector — recovers from its checkpoint directory and emits byte-for-byte
//! the events (stream, `seq`, status) of an uninterrupted reference run, for
//! all 8 shipped detector kinds, with hibernated streams recovering still
//! asleep. The suite also proves delta-chain compaction equivalence under
//! proptest-generated dirty sets, pins the incremental-size win (a 1 %-dirty
//! delta stays ≤ 5 % of its base), and fuzzes the directory against
//! truncation, checksum flips and missing files — every corruption must
//! surface as [`EngineError::InvalidSnapshot`], never a panic, while a torn
//! WAL tail (the crash cut an append short) reads as clean end-of-log.
//! Durability levels are pinned by a call-count probe: `PageCache` issues
//! zero fsyncs, `Fsync` syncs every commit point and append barrier.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use optwin::core::{BatchOutcome, CoreError, DriftDetector, DriftStatus, SnapshotEncoding};
use optwin::engine::{fsync_count, load_checkpoint_dir, CheckpointPolicy, Durability, EngineError};
use optwin::{
    DetectorSpec, DriftEvent, EngineBuilder, EngineHandle, EventSink, HibernationPolicy, MemorySink,
};

// ---------------------------------------------------------------------------
// The workload: 8 streams, one per detector kind, deterministic input
// ---------------------------------------------------------------------------

const STREAMS: u64 = 8;
const TOTAL: usize = 4_000;
/// Elements per stream covered by the last checkpoint in the crash
/// scenarios (the workers flush — and therefore checkpoint — up to here).
const COVERED: usize = 2_000;
/// Elements per stream at the crash: `COVERED..CRASH` lives only in the
/// write-ahead log when the process dies.
const CRASH: usize = 2_400;

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

fn spec_of(stream: u64) -> DetectorSpec {
    let text = match stream % 8 {
        0 => "optwin:rho=0.5,w_max=600",
        1 => "adwin",
        2 => "ddm",
        3 => "eddm",
        4 => "stepd",
        5 => "ecdd",
        6 => "page_hinkley",
        _ => "kswin:window_size=120,stat_size=25,alpha=0.0001",
    };
    text.parse().expect("valid spec string")
}

/// The `i`-th element of a stream: every stream degrades at its own drift
/// point past [`COVERED`]; binary-only detectors get Bernoulli indicators.
fn element(stream: u64, i: usize) -> f64 {
    let drift_at = 2_000 + (stream as usize * 173) % 1_100;
    let p = if i < drift_at { 0.06 } else { 0.55 };
    let u = jitter(stream.wrapping_mul(0x5150_5150) ^ i as u64) + 0.5;
    if spec_of(stream).binary_only() {
        f64::from(u < p)
    } else {
        (p + 0.4 * (u - 0.5)).clamp(0.0, 1.0)
    }
}

/// A fresh, empty scratch directory unique to this test + process.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("optwin-ckpt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_fleet(
    checkpoint: Option<(&Path, CheckpointPolicy)>,
    hibernation: Option<HibernationPolicy>,
) -> (EngineHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    if let Some((dir, policy)) = checkpoint {
        builder = builder.checkpoint(dir, policy);
    }
    if let Some(policy) = hibernation {
        builder = builder.hibernation(policy);
    }
    for stream in 0..STREAMS {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    (builder.build().expect("valid engine"), sink)
}

/// Feeds `from..to` to every stream in 250-element chunks, flushing after
/// each chunk — under `CheckpointPolicy::every_flushes(1)` that is one
/// checkpoint per chunk.
fn feed_flushing(handle: &EngineHandle, from: usize, to: usize) {
    let mut records = Vec::new();
    for start in (from..to).step_by(250) {
        let end = (start + 250).min(to);
        records.clear();
        for stream in 0..STREAMS {
            for i in start..end {
                records.push((stream, element(stream, i)));
            }
        }
        handle.submit(&records).expect("engine running");
        handle.flush().expect("no ingestion errors");
    }
}

/// Submits `from..to` for every stream in one batch **without flushing**,
/// then uses the stats barrier to guarantee the workers have processed (and
/// therefore WAL-logged) it: the window ends up in the log only, exactly
/// the state a crash must recover from.
fn feed_wal_only(handle: &EngineHandle, from: usize, to: usize) {
    let mut records = Vec::new();
    for stream in 0..STREAMS {
        for i in from..to {
            records.push((stream, element(stream, i)));
        }
    }
    handle.submit(&records).expect("engine running");
    let _ = handle.stats().expect("engine running");
}

fn canonical(mut events: Vec<DriftEvent>) -> Vec<DriftEvent> {
    events.sort_unstable_by_key(|e| (e.stream, e.seq));
    events
}

/// The uninterrupted reference: all events of the full run whose `seq` is
/// at or past `from` (the recovered engine re-emits the replayed window, so
/// its event set starts at the last checkpoint's coverage).
fn reference_events_from(from: usize) -> Vec<DriftEvent> {
    let (handle, sink) = build_fleet(None, None);
    feed_flushing(&handle, 0, TOTAL);
    let events = canonical(sink.drain());
    handle.shutdown().expect("clean shutdown");
    events
        .into_iter()
        .filter(|e| e.seq as usize >= from)
        .collect()
}

/// Recovers `dir`, feeds the remaining stream and returns every event the
/// recovered engine emitted — replayed window included.
fn recover_and_finish(dir: &Path, resume_from: usize) -> Vec<DriftEvent> {
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .recover_from_dir(dir)
        .expect("recoverable directory")
        .build()
        .expect("valid engine");
    feed_flushing(&handle, resume_from, TOTAL);
    let events = canonical(sink.drain());
    handle.shutdown().expect("clean shutdown");
    events
}

// ---------------------------------------------------------------------------
// Process-level crash: a real abort, a real recovery
// ---------------------------------------------------------------------------

/// The child half of the process-kill harness: runs the checkpointed
/// workload up to [`CRASH`] and dies without warning. Only meaningful when
/// re-executed by `crash_recovery_survives_process_kill` (gated on the
/// directory env var); inert under a plain `--ignored` sweep.
#[test]
#[ignore = "re-executed as a crashing child process by the recovery harness"]
fn crash_child_ingests_then_aborts() {
    let Ok(dir) = std::env::var("OPTWIN_CRASH_CHILD_DIR") else {
        return;
    };
    let (handle, _sink) = build_fleet(
        Some((Path::new(&dir), CheckpointPolicy::every_flushes(1))),
        None,
    );
    feed_flushing(&handle, 0, COVERED);
    feed_wal_only(&handle, COVERED, CRASH);
    // No shutdown, no flush, no checkpoint: the stats barrier above proved
    // the records reached the workers (and thus the log); everything else
    // dies with the process.
    std::process::abort();
}

/// Kills a checkpointing engine with `std::process::abort()` mid-ingest —
/// a real SIGABRT in a separate process, nothing in-process to soften the
/// landing — then recovers the directory and proves the resumed fleet's
/// events are byte-identical to an uninterrupted run, for all 8 detector
/// kinds at once.
#[test]
fn crash_recovery_survives_process_kill() {
    let dir = scratch_dir("process-kill");
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .args([
            "crash_child_ingests_then_aborts",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env("OPTWIN_CRASH_CHILD_DIR", &dir)
        .status()
        .expect("spawn crashing child");
    assert!(
        !status.success(),
        "the child must die by abort, not exit cleanly: {status}"
    );

    // The directory must already tell a coherent story before any recovery
    // runs: the last durable checkpoint covers exactly `COVERED` elements
    // per stream — the aborted window lives in the WAL, not the overlays.
    let merged = load_checkpoint_dir(&dir).expect("recoverable directory");
    assert_eq!(merged.stream_count(), STREAMS as usize);
    for stream in &merged.streams {
        assert_eq!(
            stream.seq, COVERED as u64,
            "stream {} checkpoint coverage",
            stream.stream
        );
    }

    let events = recover_and_finish(&dir, CRASH);
    let expected = reference_events_from(COVERED);
    assert!(
        !expected.is_empty(),
        "the workload must drift after the checkpoint coverage"
    );
    assert_eq!(
        events, expected,
        "recovered fleet must resume bit-exactly after a process kill"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// In-process crash: a poisoned detector panics a shard worker mid-batch
// ---------------------------------------------------------------------------

/// Delegates to a real detector but panics once it has seen a configured
/// number of elements — a worker-thread crash injected at a precise point
/// in the stream, with the WAL already holding the fatal batch
/// (log-then-apply).
struct PoisonPill {
    inner: Box<dyn DriftDetector + Send>,
    seen: usize,
    panic_at: usize,
}

impl DriftDetector for PoisonPill {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.seen += 1;
        assert!(self.seen != self.panic_at, "poison pill swallowed");
        self.inner.add_element(value)
    }
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        // Element-wise on purpose: the panic must land mid-batch, and the
        // detector contract guarantees batch == fold for the delegate.
        let mut outcome = BatchOutcome::with_len(values.len());
        for (i, &value) in values.iter().enumerate() {
            outcome.record(i, self.add_element(value));
        }
        outcome
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.inner.snapshot_state()
    }
    fn snapshot_state_encoded(&self, encoding: SnapshotEncoding) -> Option<serde::Value> {
        self.inner.snapshot_state_encoded(encoding)
    }
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), CoreError> {
        self.inner.restore_state(state)
    }
    fn elements_seen(&self) -> u64 {
        self.inner.elements_seen()
    }
    fn drifts_detected(&self) -> u64 {
        self.inner.drifts_detected()
    }
}

/// A shard worker dies by panic in the middle of a batch; the engine
/// reports [`EngineError::Poisoned`]; the directory recovers bit-exactly —
/// including the poisoned stream itself, whose fatal batch was write-ahead
/// logged before the detector saw it.
#[test]
fn poisoned_worker_recovery_is_bit_exact() {
    const PILL: u64 = 100;
    let pill_spec: DetectorSpec = "adwin".parse().expect("valid spec");

    // Reference: the identical fleet plus a healthy stream 100.
    let reference = {
        let (handle, sink) = build_fleet(None, None);
        handle
            .register_stream_spec(PILL, pill_spec.clone())
            .expect("fresh stream id");
        let feed_all = |from: usize, to: usize| {
            let mut records = Vec::new();
            for i in from..to {
                for stream in 0..STREAMS {
                    records.push((stream, element(stream, i)));
                }
                records.push((PILL, element(PILL, i)));
            }
            handle.submit(&records).expect("engine running");
            handle.flush().expect("no ingestion errors");
        };
        for start in (0..TOTAL).step_by(500) {
            feed_all(start, (start + 500).min(TOTAL));
        }
        let events = canonical(sink.drain());
        handle.shutdown().expect("clean shutdown");
        events
    };

    let dir = scratch_dir("poisoned-worker");
    let (handle, _sink) = build_fleet(Some((&dir, CheckpointPolicy::every_flushes(1))), None);
    // Registered with an explicit instance (no spec): durability comes from
    // the delta checkpoints capturing its serialized state, not the WAL.
    handle
        .register_stream(
            PILL,
            Box::new(PoisonPill {
                inner: pill_spec.build().expect("valid spec"),
                seen: 0,
                panic_at: 1_600,
            }),
        )
        .expect("fresh stream id");

    let mut records = Vec::new();
    for start in (0..1_500).step_by(500) {
        records.clear();
        for i in start..start + 500 {
            for stream in 0..STREAMS {
                records.push((stream, element(stream, i)));
            }
            records.push((PILL, element(PILL, i)));
        }
        handle.submit(&records).expect("engine running");
        handle.flush().expect("no ingestion errors");
    }
    // The fatal window: stream 100's worker dies at its 1,600th element,
    // mid-way through this batch. Every shard logged its partition before
    // applying it, so nothing here is lost.
    records.clear();
    for i in 1_500..1_700 {
        for stream in 0..STREAMS {
            records.push((stream, element(stream, i)));
        }
        records.push((PILL, element(PILL, i)));
    }
    handle.submit(&records).expect("engine running");
    let error = handle
        .shutdown()
        .expect_err("the poisoned worker must surface");
    assert!(
        matches!(error, EngineError::Poisoned),
        "expected Poisoned, got {error:?}"
    );

    // Recovery: spec-registered streams rebuild from their embedded specs;
    // the pill stream has none and comes back through the factory — as the
    // healthy detector it always claimed to be.
    let sink = Arc::new(MemorySink::new());
    let recovered = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .factory(|_stream| "adwin".parse::<DetectorSpec>().unwrap().build().unwrap())
        .recover_from_dir(&dir)
        .expect("recoverable directory")
        .build()
        .expect("valid engine");
    let mut records = Vec::new();
    for start in (1_700..TOTAL).step_by(500) {
        records.clear();
        for i in start..(start + 500).min(TOTAL) {
            for stream in 0..STREAMS {
                records.push((stream, element(stream, i)));
            }
            records.push((PILL, element(PILL, i)));
        }
        recovered.submit(&records).expect("engine running");
        recovered.flush().expect("no ingestion errors");
    }
    let events = canonical(sink.drain());
    recovered.shutdown().expect("clean shutdown");

    let expected: Vec<DriftEvent> = reference.into_iter().filter(|e| e.seq >= 1_500).collect();
    assert!(!expected.is_empty(), "the workload must drift after 1500");
    assert_eq!(
        events, expected,
        "recovery after a worker panic must resume bit-exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Hibernation: sleeping streams recover asleep
// ---------------------------------------------------------------------------

/// A fully hibernated fleet checkpoints its compressed blobs; recovery
/// re-creates every stream **still asleep** (no detector materialized until
/// its first record) and still resumes bit-exactly.
#[test]
fn hibernated_streams_recover_asleep() {
    let dir = scratch_dir("hibernated");
    let (handle, _sink) = build_fleet(
        Some((&dir, CheckpointPolicy::every_flushes(1))),
        Some(HibernationPolicy::cold_after_flushes(0)),
    );
    feed_flushing(&handle, 0, COVERED);
    handle.shutdown().expect("clean shutdown");

    let merged = load_checkpoint_dir(&dir).expect("recoverable directory");
    assert!(
        merged.streams.iter().all(|s| s.hibernated),
        "the forced policy must have every stream asleep at capture"
    );

    let sink = Arc::new(MemorySink::new());
    let recovered = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .hibernation(HibernationPolicy::default())
        .recover_from_dir(&dir)
        .expect("recoverable directory")
        .build()
        .expect("valid engine");
    let stats = recovered.stats().expect("engine running");
    assert_eq!(
        stats.hibernated_streams(),
        STREAMS as usize,
        "recovery must not wake sleeping streams"
    );
    assert_eq!(stats.elements, STREAMS * COVERED as u64);

    feed_flushing(&recovered, COVERED, TOTAL);
    let events = canonical(sink.drain());
    assert_eq!(
        recovered.stats().expect("engine running").rehydrations(),
        STREAMS
    );
    recovered.shutdown().expect("clean shutdown");
    assert_eq!(
        events,
        reference_events_from(COVERED),
        "asleep recovery must resume bit-exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Compaction equivalence (proptest)
// ---------------------------------------------------------------------------

mod compaction_property {
    use super::*;
    use proptest::prelude::*;

    /// One step of the dirty-set workload.
    #[derive(Debug, Clone)]
    enum Op {
        /// Feed a deterministic batch to the streams whose mask bit is set
        /// (at least one), leaving the rest clean.
        Feed { mask: u8, seed: u64 },
        /// Cut an explicit checkpoint.
        Checkpoint,
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                // One u64 unpacks into (mask, seed): the shim has no tuple
                // strategies.
                (0u64..63_000).prop_map(|x| Op::Feed {
                    mask: (x % 63 + 1) as u8,
                    seed: x / 63,
                }),
                (0u8..2).prop_map(|_| Op::Checkpoint),
            ],
            2..12,
        )
    }

    const PROP_STREAMS: u64 = 6;

    fn apply(handle: &EngineHandle, ops: &[Op], tail_seed: u64) {
        for op in ops {
            match op {
                Op::Feed { mask, seed } => {
                    let mut records = Vec::new();
                    for stream in 0..PROP_STREAMS {
                        if mask & (1 << stream) == 0 {
                            continue;
                        }
                        for i in 0..40u64 {
                            let p = if (seed / 7).is_multiple_of(2) {
                                0.1
                            } else {
                                0.6
                            };
                            let u =
                                jitter(seed.wrapping_mul(31).wrapping_add(stream * 977 + i)) + 0.5;
                            let value = if spec_of(stream).binary_only() {
                                f64::from(u < p)
                            } else {
                                (p + 0.3 * (u - 0.5)).clamp(0.0, 1.0)
                            };
                            records.push((stream, value));
                        }
                    }
                    handle.submit(&records).expect("engine running");
                    handle.flush().expect("no ingestion errors");
                }
                Op::Checkpoint => {
                    handle.checkpoint().expect("checkpoint succeeds");
                }
            }
        }
        // The crash point: a final batch that reaches the WAL but never a
        // checkpoint (shutdown does not cut one).
        let tail: Vec<(u64, f64)> = (0..PROP_STREAMS)
            .flat_map(|stream| {
                (0..25u64).map(move |i| {
                    let u = jitter(tail_seed.wrapping_add(stream * 131 + i)) + 0.5;
                    let value = if spec_of(stream).binary_only() {
                        f64::from(u < 0.5)
                    } else {
                        u
                    };
                    (stream, value)
                })
            })
            .collect();
        handle.submit(&tail).expect("engine running");
        let _ = handle.stats().expect("engine running");
        handle.shutdown().expect("clean shutdown");
    }

    fn build(dir: &Path, shards: usize, ratio: f64) -> (EngineHandle, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let mut builder = EngineBuilder::new()
            .shards(shards)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .checkpoint(dir, CheckpointPolicy::every_flushes(0).compact_ratio(ratio));
        for stream in 0..PROP_STREAMS {
            builder = builder.stream_spec(stream, spec_of(stream));
        }
        (builder.build().expect("valid engine"), sink)
    }

    fn recover(dir: &Path) -> (Vec<DriftEvent>, Vec<(u64, u64)>) {
        let sink = Arc::new(MemorySink::new());
        let handle = EngineBuilder::new()
            .shards(3)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .recover_from_dir(dir)
            .expect("recoverable directory")
            .build()
            .expect("valid engine");
        // A drifting continuation so post-recovery decisions are compared,
        // not just replayed ones.
        let records: Vec<(u64, f64)> = (0..PROP_STREAMS)
            .flat_map(|stream| {
                (0..120u64).map(move |i| {
                    let u = jitter(stream * 4_099 + i) + 0.5;
                    let value = if spec_of(stream).binary_only() {
                        f64::from(u < 0.7)
                    } else {
                        (0.7 + 0.2 * (u - 0.5)).clamp(0.0, 1.0)
                    };
                    (stream, value)
                })
            })
            .collect();
        handle.submit(&records).expect("engine running");
        handle.flush().expect("no ingestion errors");
        let events = canonical(sink.drain());
        let positions = handle
            .stream_snapshots()
            .expect("engine running")
            .into_iter()
            .map(|s| (s.stream, s.elements))
            .collect();
        handle.shutdown().expect("clean shutdown");
        (events, positions)
    }

    proptest! {
        /// The same workload — identical feeds, flushes and checkpoint
        /// cuts — once under a never-compacting policy (a long delta
        /// chain) and once under an always-eager one (`compact_ratio
        /// 0.0`): the merged on-disk state must be identical modulo
        /// wall-clock `detector_seconds`, and recovery from either
        /// directory — WAL tail and all — must produce identical events
        /// and stream positions.
        #[test]
        fn compacted_chain_recovers_identically(
            ops in arb_ops(),
            shards in 2usize..5,
            tail_seed in 0u64..10_000,
        ) {
            let chain_dir = scratch_dir(&format!("prop-chain-{tail_seed}-{shards}"));
            let compact_dir = scratch_dir(&format!("prop-compact-{tail_seed}-{shards}"));

            let (chain, _sink) = build(&chain_dir, shards, f64::INFINITY);
            apply(&chain, &ops, tail_seed);
            let (compact, _sink) = build(&compact_dir, shards, 0.0);
            apply(&compact, &ops, tail_seed);

            let mut merged_chain = load_checkpoint_dir(&chain_dir).unwrap();
            let mut merged_compact = load_checkpoint_dir(&compact_dir).unwrap();
            for snapshot in [&mut merged_chain, &mut merged_compact] {
                for stream in &mut snapshot.streams {
                    stream.detector_seconds = 0.0;
                }
            }
            prop_assert_eq!(&merged_chain.streams, &merged_compact.streams);

            let (chain_events, chain_positions) = recover(&chain_dir);
            let (compact_events, compact_positions) = recover(&compact_dir);
            prop_assert_eq!(chain_events, compact_events);
            prop_assert_eq!(chain_positions, compact_positions);

            let _ = std::fs::remove_dir_all(&chain_dir);
            let _ = std::fs::remove_dir_all(&compact_dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental-size guard
// ---------------------------------------------------------------------------

/// The point of delta checkpoints, pinned as a regression test: with 1 % of
/// a 200-stream fleet dirty since the last cut, the delta overlay costs at
/// most **5 %** of a full base snapshot. Both sizes print so CI logs track
/// the ratio.
#[test]
fn one_percent_dirty_delta_stays_under_five_percent_of_base() {
    const FLEET: u64 = 200;
    let dir = scratch_dir("size-guard");
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(4)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        // `compact_ratio 0.0` alternates delta → compact, which is exactly
        // the cadence this scenario needs: warm base, then a tiny delta.
        .checkpoint(&dir, CheckpointPolicy::every_flushes(0).compact_ratio(0.0));
    for stream in 0..FLEET {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let handle = builder.build().expect("valid engine");

    let feed_streams = |streams: &[u64]| {
        let mut records = Vec::new();
        for &stream in streams {
            for i in 0..60u64 {
                let u = jitter(stream * 7_919 + i) + 0.5;
                let value = if spec_of(stream).binary_only() {
                    f64::from(u < 0.2)
                } else {
                    u
                };
                records.push((stream, value));
            }
        }
        handle.submit(&records).expect("engine running");
        handle.flush().expect("no ingestion errors");
    };

    let all: Vec<u64> = (0..FLEET).collect();
    feed_streams(&all);
    let delta_all = handle.checkpoint().expect("checkpoint succeeds");
    assert!(!delta_all.full, "second checkpoint is the all-dirty delta");
    assert_eq!(delta_all.streams, FLEET as usize);
    feed_streams(&all);
    let compacted = handle.checkpoint().expect("checkpoint succeeds");
    assert!(compacted.full, "ratio 0.0 must compact the chain now");

    // 1 % dirty: two of two hundred streams see records.
    feed_streams(&[17, 93]);
    let delta = handle.checkpoint().expect("checkpoint succeeds");
    handle.shutdown().expect("clean shutdown");
    assert!(!delta.full);
    assert_eq!(delta.streams, 2, "only the dirty streams are captured");
    println!(
        "checkpoint size guard: base = {} bytes, 1%-dirty delta = {} bytes, ratio = {:.2}%",
        delta.base_bytes,
        delta.bytes,
        delta.bytes as f64 / delta.base_bytes as f64 * 100.0
    );
    assert!(
        delta.bytes * 20 <= delta.base_bytes,
        "1%-dirty delta ({} bytes) exceeds 5% of its base ({} bytes)",
        delta.bytes,
        delta.base_bytes
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Corruption fuzzing: fail loudly, never panic — except the torn tail
// ---------------------------------------------------------------------------

/// Builds a small checkpointed directory with a base, a delta chain and a
/// WAL tail, cleanly stopped (the tail stays log-only).
fn corrupt_fixture_dir(name: &str) -> PathBuf {
    let dir = scratch_dir(name);
    let (handle, _sink) = build_fleet(
        Some((
            &dir,
            CheckpointPolicy::every_flushes(1).compact_ratio(f64::INFINITY),
        )),
        None,
    );
    feed_flushing(&handle, 0, 500);
    feed_wal_only(&handle, 500, 600);
    handle.shutdown().expect("clean shutdown");
    dir
}

fn recovery_error(dir: &Path) -> EngineError {
    match EngineBuilder::new().shards(2).recover_from_dir(dir) {
        Err(error) => error,
        Ok(builder) => builder
            .build()
            .expect_err("corrupted directory must fail recovery"),
    }
}

/// Every damaged-directory class — truncated overlay, flipped WAL payload
/// byte, missing base, future manifest version, unparsable manifest —
/// surfaces as [`EngineError::InvalidSnapshot`] and never panics.
#[test]
fn corrupted_checkpoint_dirs_fail_cleanly() {
    // Truncated delta overlay.
    let dir = corrupt_fixture_dir("truncated-delta");
    let delta = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("delta-"))
        })
        .max()
        .expect("the fixture dir has delta overlays");
    let text = std::fs::read_to_string(&delta).unwrap();
    std::fs::write(&delta, &text[..text.len() / 2]).unwrap();
    assert!(
        matches!(recovery_error(&dir), EngineError::InvalidSnapshot(_)),
        "truncated overlay"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // A flipped byte inside a WAL frame payload: the frame checksum must
    // catch it (the segment header is 17 bytes, the frame header 9 — byte
    // 30 sits in the first record batch's payload).
    let dir = corrupt_fixture_dir("flipped-wal");
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .max()
        .expect("the fixture dir has WAL segments");
    let mut bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 31, "tail segment must hold a logged batch");
    bytes[30] ^= 0x5a;
    std::fs::write(&wal, &bytes).unwrap();
    let error = recovery_error(&dir);
    assert!(
        matches!(&error, EngineError::InvalidSnapshot(m) if m.contains("checksum")),
        "flipped WAL byte must fail the frame checksum, got {error:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Missing base snapshot.
    let dir = corrupt_fixture_dir("missing-base");
    let base = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("base-"))
        })
        .expect("the fixture dir has a base");
    std::fs::remove_file(&base).unwrap();
    let error = recovery_error(&dir);
    assert!(
        matches!(&error, EngineError::InvalidSnapshot(m) if m.contains("base")),
        "missing base must be named, got {error:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Future manifest version, then outright garbage.
    let dir = corrupt_fixture_dir("bad-manifest");
    let manifest = dir.join("MANIFEST.json");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, text.replace("\"version\":5", "\"version\":6")).unwrap();
    assert!(
        matches!(recovery_error(&dir), EngineError::InvalidSnapshot(m) if m.contains("version")),
        "future manifest version"
    );
    std::fs::write(&manifest, "{ not json").unwrap();
    assert!(
        matches!(recovery_error(&dir), EngineError::InvalidSnapshot(_)),
        "unparsable manifest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The one corruption that is **not** an error: a torn trailing WAL frame —
/// the crash cut an append short — reads as clean end-of-log, and recovery
/// proceeds with everything before it.
#[test]
fn torn_wal_tail_recovers_cleanly() {
    let dir = corrupt_fixture_dir("torn-tail");
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .max()
        .expect("the fixture dir has WAL segments");
    let mut bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 40, "tail segment must hold a logged batch");
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&wal, &bytes).unwrap();

    let handle = EngineBuilder::new()
        .shards(2)
        .recover_from_dir(&dir)
        .expect("a torn tail is clean EOF")
        .build()
        .expect("valid engine");
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.streams, STREAMS as usize);
    // The torn frame's batch is (partially) lost, everything before it is
    // not: every stream is at least at the checkpoint coverage.
    for report in handle.stream_snapshots().expect("engine running") {
        assert!(
            report.elements >= 500,
            "stream {} lost checkpointed records",
            report.stream
        );
    }
    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Durability levels: the fsync flag is honored (call-count probe)
// ---------------------------------------------------------------------------

/// Power loss cannot be simulated in a test, so the [`Durability::Fsync`]
/// contract is pinned through a call-count probe instead:
/// [`fsync_count`] tallies every `sync_data`/`sync_all` the checkpoint
/// subsystem issues. A `PageCache` run (the default) must issue **none**;
/// an `Fsync` run must sync at the base/MANIFEST commit, at every delta
/// cut, and at every WAL append barrier — and its directory must still
/// recover bit-exactly. Nothing else in this binary uses `Fsync`, so the
/// process-global counter is stable around the PageCache phase.
#[test]
fn fsync_durability_flag_is_honored() {
    // Phase 1 — PageCache (the default): checkpoints, WAL appends and a
    // clean stop, with zero fsyncs issued.
    let before = fsync_count();
    let dir = scratch_dir("durability-pagecache");
    let (handle, _sink) = build_fleet(Some((&dir, CheckpointPolicy::every_flushes(1))), None);
    feed_flushing(&handle, 0, 500);
    feed_wal_only(&handle, 500, 600);
    handle.shutdown().expect("clean shutdown");
    assert_eq!(
        fsync_count(),
        before,
        "PageCache durability must never fsync"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 2 — Fsync: the probe must tick at the build's base checkpoint,
    // keep ticking across delta cuts, and tick again on WAL-only appends
    // (the append barrier), not just at checkpoints.
    let dir = scratch_dir("durability-fsync");
    let policy = CheckpointPolicy::every_flushes(1).durability(Durability::Fsync);
    let (handle, _sink) = build_fleet(Some((&dir, policy)), None);
    let after_build = fsync_count();
    assert!(
        after_build > before,
        "the build's generation-0 base must be fsynced"
    );
    feed_flushing(&handle, 0, COVERED);
    let after_deltas = fsync_count();
    assert!(
        after_deltas > after_build,
        "delta checkpoints must be fsynced"
    );
    feed_wal_only(&handle, COVERED, CRASH);
    assert!(
        fsync_count() > after_deltas,
        "WAL append barriers must be fsynced even without a checkpoint"
    );
    handle.shutdown().expect("clean shutdown");

    // The synced directory recovers exactly like a PageCache one would:
    // durability changes when bytes hit the platter, never what they say.
    let events = recover_and_finish(&dir, CRASH);
    assert_eq!(
        events,
        reference_events_from(COVERED),
        "Fsync-durability recovery must resume bit-exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// API edges
// ---------------------------------------------------------------------------

/// `checkpoint()` without a configured directory is a clean error, and
/// recovery of a directory that never existed reports InvalidSnapshot.
#[test]
fn checkpoint_api_edges() {
    let (handle, _sink) = build_fleet(None, None);
    let error = handle
        .checkpoint()
        .expect_err("no checkpoint directory configured");
    assert!(
        matches!(&error, EngineError::Checkpoint(m) if m.contains("checkpoint")),
        "got {error:?}"
    );
    handle.shutdown().expect("clean shutdown");

    let missing = scratch_dir("never-written");
    assert!(matches!(
        EngineBuilder::new().recover_from_dir(&missing),
        Err(EngineError::InvalidSnapshot(_))
    ));
}

/// A clean stop is just a crash the engine saw coming: stop without a final
/// checkpoint, recover, and the WAL tail carries the difference. Also pins
/// the report plumbing: the build cuts a full generation-0 base, flush
/// cadence writes deltas, and compaction kicks in past the ratio.
#[test]
fn clean_stop_recovery_and_report_plumbing() {
    let dir = scratch_dir("clean-stop");
    let (handle, _sink) = build_fleet(
        Some((
            &dir,
            CheckpointPolicy::every_flushes(0).compact_ratio(f64::INFINITY),
        )),
        None,
    );
    feed_flushing(&handle, 0, 1_000);
    let first = handle.checkpoint().expect("checkpoint succeeds");
    assert!(!first.full, "generation 0 was the build's base");
    assert_eq!(first.generation, 1);
    assert_eq!(first.streams, STREAMS as usize);
    feed_flushing(&handle, 1_000, COVERED);
    let second = handle.checkpoint().expect("checkpoint succeeds");
    assert_eq!(second.generation, 2);
    assert!(second.delta_chain_bytes >= second.bytes);
    feed_wal_only(&handle, COVERED, CRASH);
    handle.shutdown().expect("clean shutdown");

    let events = recover_and_finish(&dir, CRASH);
    assert_eq!(
        events,
        reference_events_from(COVERED),
        "clean-stop recovery must resume bit-exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
