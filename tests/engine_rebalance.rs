//! End-to-end tests of dynamic stream routing: load-aware rebalancing,
//! observable per-shard load, and the placement-preserving v3 snapshot
//! format — run through the public facade exactly as a downstream user
//! would.
//!
//! The headline properties:
//!
//! * **Rebalance equivalence** — migrating streams between shards at flush
//!   barriers produces bit-exact `DriftEvent` streams (same events, same
//!   per-stream `seq`) versus a never-rebalanced run, on a skewed (Zipf-ish)
//!   workload and under proptest-generated interleavings of submits,
//!   registrations, rebalances and flushes against a 1-shard reference.
//! * **Placement persistence** — a v3 snapshot records the rebalanced
//!   placement and a restore reproduces it; v2/v1 snapshots still load,
//!   defaulting to `id % shards`.

use std::sync::Arc;

use optwin::engine::EngineError;
use optwin::{
    DetectorSpec, DriftEvent, EngineBuilder, EngineHandle, EngineSnapshot, EventSink, MemorySink,
    RebalancePolicy,
};

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Sorted `(stream, seq)` view of an event list, the canonical form for
/// bit-exact comparison.
fn canonical(mut events: Vec<DriftEvent>) -> Vec<DriftEvent> {
    events.sort_unstable_by_key(|e| (e.stream, e.seq));
    events
}

/// Shard count override for CI matrixing (see `tests/engine_service.rs`).
fn test_shards() -> usize {
    std::env::var("OPTWIN_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4)
}

const SKEW_STREAMS: u64 = 16;
const SKEW_TOTAL: usize = 6_000; // elements for stream 0; colder streams get less

/// Zipf-ish skew: stream 0 sees every index, stream `s` every `s+1`-th —
/// so stream 0 carries ~`H(16) ≈ 3.4×` the load of the average stream.
fn skewed_chunk(from: usize, to: usize) -> Vec<(u64, f64)> {
    let mut records = Vec::new();
    for i in from..to {
        for stream in 0..SKEW_STREAMS {
            if i % (stream as usize + 1) != 0 {
                continue;
            }
            // Every stream degrades at its own point of its *own* element
            // sequence so both hot and cold streams produce events.
            let seq_no = i / (stream as usize + 1);
            let drift_at = 1_500 / (stream as usize + 1) + 50 * stream as usize;
            let base = if seq_no < drift_at { 0.08 } else { 0.55 };
            let value = (base + 0.06 * jitter(stream << 32 | i as u64)).clamp(0.0, 1.0);
            records.push((stream, value));
        }
    }
    records
}

fn skewed_engine(shards: usize) -> (EngineHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let spec: DetectorSpec = "optwin:rho=0.5,w_max=400".parse().expect("valid spec");
    let handle = EngineBuilder::new()
        .shards(shards)
        .default_spec(spec)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");
    (handle, sink)
}

/// The skewed-load acceptance test: rebalancing mid-run (both policies, at
/// flush barriers) moves streams, reduces the record-load imbalance, and
/// changes **nothing** about the emitted events.
#[test]
fn skewed_load_rebalance_is_bit_exact_and_balances() {
    let shards = test_shards();

    // Never-rebalanced reference.
    let (reference, reference_sink) = skewed_engine(shards);
    reference
        .submit(&skewed_chunk(0, SKEW_TOTAL))
        .expect("engine running");
    reference.flush().expect("no ingestion errors");
    let reference_events = canonical(reference_sink.drain());
    let reference_stats = reference.stats().expect("engine running");
    reference.shutdown().expect("clean shutdown");

    // Rebalanced run: four segments, a rebalance at each boundary.
    let (rebalanced, rebalanced_sink) = skewed_engine(shards);
    let mut moved_total = 0;
    for (k, bounds) in [
        (0, 1_500),
        (1_500, 3_000),
        (3_000, 4_500),
        (4_500, SKEW_TOTAL),
    ]
    .iter()
    .enumerate()
    {
        rebalanced
            .submit(&skewed_chunk(bounds.0, bounds.1))
            .expect("engine running");
        rebalanced.flush().expect("no ingestion errors");
        // Alternate the policies but end on Records: the final assertion
        // below compares *record*-load imbalance against the static run, and
        // only a record-based final plan optimizes that quantity — a
        // timing-based (DetectorSeconds) final plan depends on wall-clock
        // noise and can legitimately leave record counts skewed.
        let policy = if k % 2 == 0 {
            RebalancePolicy::DetectorSeconds
        } else {
            RebalancePolicy::Records
        };
        let report = rebalanced.rebalance(policy).expect("engine running");
        assert_eq!(report.streams, SKEW_STREAMS as usize);
        moved_total += report.moved;
        if policy == RebalancePolicy::Records && shards > 1 {
            // The greedy plan can never be worse than what it replaces.
            assert!(
                report.imbalance_after() <= report.imbalance_before() + 1e-9,
                "{report}"
            );
        }
    }
    let rebalanced_events = canonical(rebalanced_sink.drain());
    let rebalanced_stats = rebalanced.stats().expect("engine running");

    if shards > 1 {
        assert!(
            moved_total > 0,
            "Zipf skew over modulo placement must trigger migrations"
        );
        assert!(
            rebalanced.rerouted_streams() > 0,
            "moved streams must be pinned in the routing table"
        );
        // The routing table keeps answering for every stream, moved or not.
        for stream in 0..SKEW_STREAMS {
            let stats = rebalanced
                .stream_stats(stream)
                .expect("engine running")
                .expect("stream registered");
            assert_eq!(stats.shard, rebalanced.shard_of(stream));
        }
        // Record-load balance improved over the static placement.
        assert!(
            rebalanced_stats.imbalance() <= reference_stats.imbalance() + 1e-9,
            "imbalance {:.3} (rebalanced) vs {:.3} (static)",
            rebalanced_stats.imbalance(),
            reference_stats.imbalance()
        );
    }
    rebalanced.shutdown().expect("clean shutdown");

    // The core contract: not a single event differs.
    assert!(
        !reference_events.is_empty(),
        "workload should produce drift events"
    );
    assert_eq!(rebalanced_events, reference_events);
    // Per-stream element counts agree too.
    assert_eq!(
        rebalanced_stats.stream_records,
        reference_stats.stream_records
    );
}

/// A v3 snapshot taken after a rebalance records the tuned placement, and a
/// restore reproduces it — along with bit-exact remaining events.
#[test]
fn v3_snapshot_round_trips_rebalanced_placement() {
    const CUT: usize = 3_200;
    let shards = test_shards();

    // Uninterrupted, never-rebalanced reference.
    let (reference, reference_sink) = skewed_engine(shards);
    reference
        .submit(&skewed_chunk(0, SKEW_TOTAL))
        .expect("engine running");
    reference.flush().expect("no ingestion errors");
    let reference_events = canonical(reference_sink.drain());
    reference.shutdown().expect("clean shutdown");

    // Original: feed to CUT, rebalance, snapshot, tear down.
    let (original, original_sink) = skewed_engine(shards);
    original
        .submit(&skewed_chunk(0, CUT))
        .expect("engine running");
    original.flush().expect("no ingestion errors");
    original
        .rebalance(RebalancePolicy::Records)
        .expect("engine running");
    let placement: Vec<usize> = (0..SKEW_STREAMS).map(|s| original.shard_of(s)).collect();
    let rerouted = original.rerouted_streams();
    let early_events = canonical(original_sink.drain());
    let snapshot = original.snapshot().expect("snapshot-capable");
    original.shutdown().expect("clean shutdown");
    assert!(snapshot.is_self_describing());
    assert!(snapshot.records_placement());
    for entry in &snapshot.streams {
        assert_eq!(entry.shard, Some(placement[entry.stream as usize]));
    }

    // Restore through JSON into the same shard count: placement survives.
    let snapshot = EngineSnapshot::from_json(&snapshot.to_json()).expect("well-formed JSON");
    let restored_sink = Arc::new(MemorySink::new());
    let restored = EngineBuilder::new()
        .shards(shards)
        .sink(Arc::clone(&restored_sink) as Arc<dyn EventSink>)
        .restore(snapshot)
        .build()
        .expect("self-describing snapshot needs no factory");
    let restored_placement: Vec<usize> = (0..SKEW_STREAMS).map(|s| restored.shard_of(s)).collect();
    assert_eq!(
        restored_placement, placement,
        "placement must survive restore"
    );
    assert_eq!(restored.rerouted_streams(), rerouted);
    for stream in 0..SKEW_STREAMS {
        let stats = restored
            .stream_stats(stream)
            .expect("engine running")
            .expect("restored");
        assert_eq!(stats.shard, placement[stream as usize]);
    }

    // ... and the remaining events are exactly the reference's.
    restored
        .submit(&skewed_chunk(CUT, SKEW_TOTAL))
        .expect("engine running");
    restored.flush().expect("no ingestion errors");
    let late_events = canonical(restored_sink.drain());
    restored.shutdown().expect("clean shutdown");
    let mut stitched = early_events;
    stitched.extend(late_events);
    assert_eq!(canonical(stitched), reference_events);
}

/// v2 snapshots (no `shard` entries) still restore — placement falls back
/// to the `id % shards` default, decisions stay bit-exact.
#[test]
fn v2_snapshots_restore_with_modulo_placement() {
    const CUT: usize = 3_200;
    let shards = test_shards();

    let (reference, reference_sink) = skewed_engine(shards);
    reference
        .submit(&skewed_chunk(0, SKEW_TOTAL))
        .expect("engine running");
    reference.flush().expect("no ingestion errors");
    let reference_events = canonical(reference_sink.drain());
    reference.shutdown().expect("clean shutdown");

    let (original, original_sink) = skewed_engine(shards);
    original
        .submit(&skewed_chunk(0, CUT))
        .expect("engine running");
    original.flush().expect("no ingestion errors");
    original
        .rebalance(RebalancePolicy::Records)
        .expect("engine running");
    let early_events = canonical(original_sink.drain());
    let snapshot = original.snapshot().expect("snapshot-capable");
    original.shutdown().expect("clean shutdown");

    // Downgrade to wire format v2: strip the placement entries.
    let mut v2 = snapshot;
    v2.version = 2;
    for stream in &mut v2.streams {
        stream.shard = None;
    }
    let v2 = EngineSnapshot::from_json(&v2.to_json()).expect("v2 parses");
    assert_eq!(v2.version, 2);
    assert!(!v2.records_placement());

    let restored_sink = Arc::new(MemorySink::new());
    let restored = EngineBuilder::new()
        .shards(shards)
        .sink(Arc::clone(&restored_sink) as Arc<dyn EventSink>)
        .restore(v2)
        .build()
        .expect("v2 snapshots still restore");
    // No placement info ⇒ everything on its modulo shard, no pins.
    assert_eq!(restored.rerouted_streams(), 0);
    for stream in 0..SKEW_STREAMS {
        assert_eq!(restored.shard_of(stream), (stream as usize) % shards);
    }
    restored
        .submit(&skewed_chunk(CUT, SKEW_TOTAL))
        .expect("engine running");
    restored.flush().expect("no ingestion errors");
    let late_events = canonical(restored_sink.drain());
    restored.shutdown().expect("clean shutdown");
    let mut stitched = early_events;
    stitched.extend(late_events);
    assert_eq!(canonical(stitched), reference_events);
}

/// `EngineBuilder::auto_rebalance` triggers migrations at flush barriers
/// once the imbalance threshold is crossed, and rejects degenerate
/// thresholds at build time.
#[test]
fn auto_rebalance_triggers_at_flush_barriers() {
    for bad in [1.0, 0.5, f64::NAN, f64::INFINITY] {
        let err = EngineBuilder::new()
            .shards(2)
            .auto_rebalance(bad)
            .build()
            .expect_err("degenerate threshold");
        assert!(
            matches!(err, EngineError::InvalidRebalanceThreshold(_)),
            "{bad}: {err}"
        );
    }

    let shards = test_shards();
    let sink = Arc::new(MemorySink::new());
    let spec: DetectorSpec = "optwin:rho=0.5,w_max=400".parse().expect("valid spec");
    let handle = EngineBuilder::new()
        .shards(shards)
        .default_spec(spec)
        .auto_rebalance(1.2)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");

    // One scorching stream plus a cold tail: modulo placement leaves shard
    // 0 with nearly all the load.
    let mut records: Vec<(u64, f64)> = Vec::new();
    for i in 0..4_000usize {
        records.push((0, 0.1 + 0.05 * jitter(i as u64)));
        if i % 20 == 0 {
            for stream in 1..8u64 {
                records.push((stream, 0.1));
            }
        }
    }
    handle.submit(&records).expect("engine running");
    handle.flush().expect("flush runs the auto-rebalance");
    if shards > 1 {
        assert!(
            handle.rerouted_streams() > 0,
            "auto-rebalance must have moved something at imbalance {:.2}",
            handle.stats().expect("engine running").imbalance()
        );
    }
    handle.shutdown().expect("clean shutdown");
}

/// Per-shard load is observable from the handle: record counts, queue
/// occupancy, batch EWMA, per-stream counts, and a Display rendering.
#[test]
fn stats_expose_per_shard_load_and_render() {
    let (handle, _sink) = skewed_engine(2);
    handle
        .submit(&skewed_chunk(0, 1_000))
        .expect("engine running");
    handle.flush().expect("no ingestion errors");
    let stats = handle.stats().expect("engine running");

    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.streams, SKEW_STREAMS as usize);
    let shard_records: u64 = stats.shards.iter().map(|s| s.records).sum();
    assert_eq!(shard_records, stats.elements, "every record is accounted");
    let placed_records: u64 = stats.shards.iter().map(|s| s.stream_records).sum();
    assert_eq!(placed_records, stats.elements, "placement view is complete");
    let stream_records: u64 = stats.stream_records.iter().map(|&(_, n)| n).sum();
    assert_eq!(stream_records, stats.elements);
    // Stream 0 saw every index; stream 1 every second one.
    assert_eq!(stats.stream_records[0], (0, 1_000));
    assert_eq!(stats.stream_records[1], (1, 500));
    for shard in &stats.shards {
        assert_eq!(shard.queue_depth, 0, "queues are empty after a flush");
        // (`> 0.0` would flake on hosts whose clock is coarser than a
        // small batch's processing time.)
        assert!(
            shard.batch_ewma_seconds.is_finite() && shard.batch_ewma_seconds >= 0.0,
            "EWMA primed by the batch"
        );
        assert!(shard.streams > 0);
    }
    assert!(stats.imbalance() >= 1.0);

    let rendered = stats.to_string();
    assert!(rendered.contains("shard 0:"), "{rendered}");
    assert!(rendered.contains("shard 1:"), "{rendered}");
    assert!(rendered.contains("hottest streams:"), "{rendered}");
    assert!(rendered.contains("#0 (1000)"), "{rendered}");
    handle.shutdown().expect("clean shutdown");
}

/// A fleet config file builds a fully registered engine with zero code —
/// `EngineBuilder::from_config_path` / `from_config_json`.
#[test]
fn fleet_config_builds_a_running_engine() {
    // Integration tests run with the package root as CWD, so the
    // checked-in example config (also smoke-run by CI) resolves directly.
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::from_config_path("configs/fleet_example.json")
        .expect("checked-in example config parses")
        .shards(2)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.streams, 6);
    assert_eq!(
        handle
            .stream_spec(1)
            .expect("engine running")
            .expect("configured")
            .id(),
        "adwin"
    );
    handle
        .submit(&[(0, 0.1), (3, 0.2)])
        .expect("engine running");
    handle.flush().expect("no ingestion errors");
    assert_eq!(handle.stats().expect("engine running").elements, 2);
    handle.shutdown().expect("clean shutdown");

    assert!(matches!(
        EngineBuilder::from_config_path("configs/no_such_fleet.json"),
        Err(EngineError::InvalidFleetConfig(_))
    ));

    let inline = EngineBuilder::from_config_json(r#"{"9": "ddm"}"#)
        .expect("inline config parses")
        .shards(1)
        .build()
        .expect("valid engine");
    assert_eq!(
        inline
            .stream_spec(9)
            .expect("engine running")
            .expect("configured")
            .id(),
        "ddm"
    );
    inline.shutdown().expect("clean shutdown");
}

mod churn_property {
    use super::*;
    use proptest::prelude::*;

    /// One step of the churn workload.
    #[derive(Debug, Clone)]
    enum Op {
        /// Submit a deterministic batch derived from the seed (records over
        /// streams 0..8, 60 % of traffic on streams 0–1, mean flipping with
        /// the seed so ADWIN actually fires).
        Submit(u64),
        /// Register a stream id declaratively (may collide — both engines
        /// must agree on the outcome).
        Register(u64),
        /// Rebalance under one of the two policies.
        Rebalance(bool),
        /// Flush barrier.
        Flush,
    }

    fn batch_for(seed: u64) -> Vec<(u64, f64)> {
        (0..150u64)
            .map(|i| {
                let h = (seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9)))
                    >> 7;
                let stream = if h % 10 < 6 { h % 2 } else { 2 + h % 6 };
                let mean = if (seed / 3).is_multiple_of(2) {
                    0.1
                } else {
                    0.9
                };
                let value = (mean + 0.08 * jitter(h)).clamp(0.0, 1.0);
                (stream, value)
            })
            .collect()
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (0u64..1_000).prop_map(Op::Submit),
                (0u64..12).prop_map(Op::Register),
                (0u8..2).prop_map(|p| Op::Rebalance(p == 0)),
                (0u8..2).prop_map(|_| Op::Flush),
            ],
            2..24,
        )
    }

    /// Applies the op sequence to a fresh engine with `shards` shards and
    /// returns `(events, per-stream (id, elements, drifts))`.
    fn run(ops: &[Op], shards: usize) -> (Vec<DriftEvent>, Vec<(u64, u64, u64)>) {
        let sink = Arc::new(MemorySink::new());
        let spec: DetectorSpec = "adwin:delta=0.3,clock=4".parse().expect("valid spec");
        let handle = EngineBuilder::new()
            .shards(shards)
            .default_spec(spec)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .build()
            .expect("valid engine");
        let mut register_outcomes = Vec::new();
        for op in ops {
            match op {
                Op::Submit(seed) => handle.submit(&batch_for(*seed)).expect("engine running"),
                Op::Register(stream) => {
                    let kswin: DetectorSpec = "kswin:window_size=60,stat_size=12"
                        .parse()
                        .expect("valid spec");
                    register_outcomes.push(handle.register_stream_spec(*stream, kswin).is_ok());
                }
                Op::Rebalance(records) => {
                    let policy = if *records {
                        RebalancePolicy::Records
                    } else {
                        RebalancePolicy::DetectorSeconds
                    };
                    handle.rebalance(policy).expect("engine running");
                }
                Op::Flush => handle.flush().expect("no ingestion errors"),
            }
        }
        handle.flush().expect("no ingestion errors");
        let streams = handle
            .stream_snapshots()
            .expect("engine running")
            .into_iter()
            .map(|s| (s.stream, s.elements, s.drifts))
            .collect();
        handle.shutdown().expect("clean shutdown");
        let mut events = sink.drain();
        events.sort_unstable_by_key(|e| (e.stream, e.seq));
        (events, streams)
    }

    proptest! {
        /// Any interleaving of submits / registrations / rebalances /
        /// flushes on a sharded engine yields exactly the event sequence of
        /// a 1-shard reference engine running the same ops.
        #[test]
        fn churn_matches_single_shard_reference(
            ops in arb_ops(),
            shards in 2usize..6,
        ) {
            let (reference_events, reference_streams) = run(&ops, 1);
            let (events, streams) = run(&ops, shards);
            prop_assert_eq!(events, reference_events);
            prop_assert_eq!(streams, reference_streams);
        }
    }
}
