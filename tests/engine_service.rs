//! End-to-end tests of the service-style engine API, run through the public
//! facade exactly as a downstream user would.
//!
//! Two headline tests drive the acceptance workload for the API redesign:
//!
//! * **Submit equivalence** — 1 M elements over 64 mixed-detector streams
//!   pushed through the non-blocking [`EngineHandle::submit`] path (bounded
//!   per-shard queues, [`MemorySink`] fan-out) produce exactly the same
//!   `DriftEvent`s as the synchronous [`DriftEngine::ingest_batch`] wrapper.
//! * **Snapshot/restore equivalence** — an engine snapshotted mid-stream and
//!   restored (through its JSON form) into a fresh builder produces exactly
//!   the events the uninterrupted engine produces for the remaining input.

use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Duration;

use optwin::engine::EngineError;
use optwin::{
    DetectorFactory, DetectorKind, DetectorSpec, DriftDetector, DriftEngine, DriftEvent,
    EngineBuilder, EngineConfig, EngineHandle, EngineSnapshot, EventSink, MemorySink, Optwin,
    OptwinConfig,
};

/// Deterministic pseudo-random jitter in [-0.5, 0.5) (SplitMix64).
fn jitter(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

const N_STREAMS: u64 = 64;
const ELEMENTS_PER_STREAM: usize = 15_625; // 64 × 15 625 = 1 000 000

/// Shard count for the acceptance workloads: 8 by default, overridable via
/// `OPTWIN_TEST_SHARDS` so CI can matrix the whole suite over shard counts
/// (results must be identical for every value — that is the engine's core
/// determinism contract).
fn test_shards() -> usize {
    std::env::var("OPTWIN_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(8)
}

/// The detector kind assigned to a stream: the full 8-kind paper line-up,
/// tiled over the streams.
fn kind_of(stream: u64) -> DetectorKind {
    DetectorKind::paper_lineup()[(stream % 8) as usize]
}

/// The `i`-th element of a stream: every stream degrades at its own drift
/// point; binary-only detectors get Bernoulli indicators, the rest get
/// real-valued losses.
fn element(stream: u64, i: usize) -> f64 {
    let drift_at = ELEMENTS_PER_STREAM / 2 + (stream as usize * 37) % 2_000;
    let p = if i < drift_at { 0.06 } else { 0.55 };
    let u = jitter(stream.wrapping_mul(0x9E37_79B9) ^ i as u64) + 0.5;
    if kind_of(stream).binary_only() {
        f64::from(u < p)
    } else {
        (p + 0.4 * (u - 0.5)).clamp(0.0, 1.0)
    }
}

/// Builds the paper line-up detector for a stream, with a small OPTWIN
/// window / KSWIN buffer so the million-element run stays fast in debug
/// builds.
fn build_detector(stream: u64) -> Box<dyn DriftDetector + Send> {
    match kind_of(stream) {
        DetectorKind::Kswin => Box::new(optwin::baselines::Kswin::new(
            optwin::baselines::KswinConfig {
                window_size: 120,
                stat_size: 25,
                alpha: 1e-4,
            },
        )),
        kind => DetectorFactory::with_optwin_window(600).build(kind),
    }
}

/// Sorted `(stream, seq, is_drift)` view of an event list, the canonical
/// form for bit-exact comparison (events of different streams interleave
/// arbitrarily in emission order).
fn canonical(mut events: Vec<DriftEvent>) -> Vec<DriftEvent> {
    events.sort_unstable_by_key(|e| (e.stream, e.seq));
    events
}

/// The acceptance workload: 1 M elements over 64 streams submitted through
/// the non-blocking handle with a deliberately small queue bound (so
/// backpressure engages), compared event-for-event against the synchronous
/// `ingest_batch` wrapper.
#[test]
fn one_million_elements_via_submit_match_ingest_batch() {
    let per_stream_chunk = 128usize;
    let chunk_records = per_stream_chunk * N_STREAMS as usize;

    // Service path: pipelined submits, one flush at the end.
    let shards = test_shards();
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::new()
        .shards(shards)
        // Two chunks of headroom per shard: submission regularly outruns
        // detection, so the bounded queue genuinely blocks.
        .queue_capacity((chunk_records * 2 / shards).max(1))
        .factory(build_detector)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");
    assert_eq!(handle.num_shards(), shards);

    let mut records = Vec::with_capacity(chunk_records);
    let mut start = 0usize;
    while start < ELEMENTS_PER_STREAM {
        let end = (start + per_stream_chunk).min(ELEMENTS_PER_STREAM);
        records.clear();
        for stream in 0..N_STREAMS {
            for i in start..end {
                records.push((stream, element(stream, i)));
            }
        }
        handle.submit(&records).expect("engine running");
        start = end;
    }
    handle.flush().expect("no ingestion errors");

    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.streams, N_STREAMS as usize);
    assert_eq!(stats.elements, 1_000_000);
    let service_events = canonical(sink.drain());
    assert_eq!(stats.drifts, service_events.len() as u64);
    handle.shutdown().expect("clean shutdown");

    // Blocking reference: the same records through the synchronous wrapper,
    // with a different batching (the detector contract makes chunk
    // boundaries irrelevant).
    let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(4), build_detector);
    let mut reference_events = Vec::new();
    let mut records = Vec::new();
    let mut start = 0usize;
    while start < ELEMENTS_PER_STREAM {
        let end = (start + 500).min(ELEMENTS_PER_STREAM);
        records.clear();
        for stream in 0..N_STREAMS {
            for i in start..end {
                records.push((stream, element(stream, i)));
            }
        }
        reference_events.extend(engine.ingest_batch(&records).expect("factory-backed"));
        start = end;
    }

    assert_eq!(
        service_events,
        canonical(reference_events),
        "submit path must match ingest_batch bit-exactly"
    );
    // Every stream was injected with one genuine drift; the line-up detects
    // the vast majority of them.
    let streams_with_detection: std::collections::HashSet<u64> =
        service_events.iter().map(|e| e.stream).collect();
    assert!(
        streams_with_detection.len() >= 56,
        "only {} of 64 streams saw a detection",
        streams_with_detection.len()
    );
}

/// OPTWIN factory shared by the snapshot tests: snapshot-capable and cheap.
fn optwin_factory(w_max: usize) -> impl Fn(u64) -> Box<dyn DriftDetector + Send> + Clone {
    move |_stream| {
        let config = OptwinConfig::builder()
            .robustness(0.5)
            .max_window(w_max)
            .build()
            .expect("valid config");
        Box::new(Optwin::with_shared_table(config).expect("valid config"))
            as Box<dyn DriftDetector + Send>
    }
}

/// Builds an OPTWIN-backed service engine and returns its handle and sink.
fn optwin_engine(
    shards: usize,
    w_max: usize,
    restore: Option<EngineSnapshot>,
) -> (EngineHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::new()
        .shards(shards)
        .factory(optwin_factory(w_max))
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    if let Some(snapshot) = restore {
        builder = builder.restore(snapshot);
    }
    (builder.build().expect("valid engine"), sink)
}

/// Real-valued error stream with a per-stream degradation point.
fn loss(stream: u64, i: usize) -> f64 {
    let drift_at = 4_000 + (stream as usize * 131) % 1_500;
    let base = if i < drift_at { 0.08 } else { 0.5 };
    (base + 0.06 * jitter(stream << 32 | i as u64)).clamp(0.0, 1.0)
}

/// The second acceptance test: snapshot mid-stream, restore into a fresh
/// builder (through JSON, as a real restart would), feed the remaining
/// elements — the events must be identical to an uninterrupted engine's,
/// even across a different shard count.
#[test]
fn snapshot_restore_produces_identical_remaining_events() {
    const STREAMS: u64 = 48;
    const TOTAL: usize = 8_000;
    const CUT: usize = 4_500; // past some per-stream drift points, before others
    let feed = |handle: &EngineHandle, from: usize, to: usize| {
        let mut records = Vec::new();
        for start in (from..to).step_by(250) {
            let end = (start + 250).min(to);
            records.clear();
            for stream in 0..STREAMS {
                for i in start..end {
                    records.push((stream, loss(stream, i)));
                }
            }
            handle.submit(&records).expect("engine running");
        }
        handle.flush().expect("no ingestion errors");
    };

    // Uninterrupted reference.
    let (reference, reference_sink) = optwin_engine(test_shards(), 800, None);
    feed(&reference, 0, TOTAL);
    let reference_events = canonical(reference_sink.drain());
    reference.shutdown().expect("clean shutdown");

    // Interrupted run: feed to CUT, snapshot, tear the engine down.
    let (original, original_sink) = optwin_engine(test_shards(), 800, None);
    feed(&original, 0, CUT);
    let early_events = canonical(original_sink.drain());
    let snapshot = original.snapshot().expect("OPTWIN supports snapshots");
    original.shutdown().expect("clean shutdown");
    assert_eq!(snapshot.stream_count(), STREAMS as usize);

    // Restore through the JSON wire format into a *differently sharded*
    // fresh engine and feed the remainder.
    let snapshot = EngineSnapshot::from_json(&snapshot.to_json()).expect("well-formed JSON");
    let (restored, restored_sink) = optwin_engine(7, 800, Some(snapshot));
    let stats = restored.stats().expect("engine running");
    assert_eq!(stats.streams, STREAMS as usize);
    assert_eq!(stats.elements, STREAMS * CUT as u64);
    feed(&restored, CUT, TOTAL);
    let late_events = canonical(restored_sink.drain());
    restored.shutdown().expect("clean shutdown");

    // Early + late must equal the uninterrupted run, bit-exactly.
    let mut stitched = early_events;
    stitched.extend(late_events);
    assert_eq!(
        canonical(stitched),
        reference_events,
        "restored engine must resume with identical decisions"
    );
    // Sanity: the workload actually produces detections on both sides of
    // the cut.
    assert!(
        reference_events.iter().any(|e| (e.seq as usize) < CUT)
            && reference_events.iter().any(|e| (e.seq as usize) >= CUT),
        "test workload should drift on both sides of the cut"
    );
}

/// Unknown streams auto-register through the factory on the submit path;
/// without a factory the records are dropped and the error surfaces at
/// flush.
#[test]
fn unknown_stream_handling_on_the_submit_path() {
    // With a factory: auto-registration on first sight.
    let (handle, _sink) = optwin_engine(3, 200, None);
    assert!(handle.has_factory());
    handle
        .submit(&[(10, 0.1), (11, 0.2), (10, 0.3)])
        .expect("engine running");
    handle.flush().expect("no errors with a factory");
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.streams, 2);
    assert_eq!(stats.elements, 3);
    assert_eq!(
        handle
            .stream_stats(10)
            .expect("engine running")
            .expect("registered")
            .elements,
        2
    );
    handle.shutdown().expect("clean shutdown");

    // Without a factory: the offending records are dropped, the rest are
    // ingested, and flush reports the error.
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::new()
        .shards(2)
        .stream(1, optwin_factory(200)(1))
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");
    handle
        .submit(&[(1, 0.1), (99, 0.5), (1, 0.2)])
        .expect("submit itself succeeds");
    assert_eq!(
        handle.flush().expect_err("unknown stream must surface"),
        EngineError::UnknownStream(99)
    );
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.streams, 1);
    assert_eq!(stats.elements, 2, "known-stream records are still ingested");
    handle.shutdown().expect("no pending errors left");
}

/// Duplicate stream ids are rejected at build time (pre-registered or
/// restored) and at runtime registration.
#[test]
fn duplicate_streams_are_rejected_everywhere() {
    let factory = optwin_factory(100);
    // Builder-level.
    let err = EngineBuilder::new()
        .shards(2)
        .stream(5, factory(5))
        .stream(5, factory(5))
        .build()
        .expect_err("duplicate pre-registration");
    assert_eq!(err, EngineError::DuplicateStream(5));

    // Runtime registration against a pre-registered stream.
    let handle = EngineBuilder::new()
        .shards(2)
        .stream(5, factory(5))
        .build()
        .expect("valid engine");
    assert_eq!(
        handle
            .register_stream(5, factory(5))
            .expect_err("duplicate runtime registration"),
        EngineError::DuplicateStream(5)
    );
    handle
        .register_stream(6, factory(6))
        .expect("new id is fine");
    handle.shutdown().expect("clean shutdown");

    // Restore-level: a snapshot colliding with a pre-registered stream.
    let (donor, _sink) = optwin_engine(2, 100, None);
    donor.submit(&[(5, 0.1)]).expect("engine running");
    donor.flush().expect("no errors");
    let snapshot = donor.snapshot().expect("snapshot-capable");
    donor.shutdown().expect("clean shutdown");
    let err = EngineBuilder::new()
        .shards(2)
        .factory(factory.clone())
        .restore(snapshot)
        .stream(5, factory(5))
        .build()
        .expect_err("restored id collides with pre-registered id");
    assert_eq!(err, EngineError::DuplicateStream(5));
}

/// Builder validation and restore preconditions.
#[test]
fn builder_rejects_degenerate_configurations() {
    assert_eq!(
        EngineBuilder::new()
            .shards(0)
            .build()
            .expect_err("no shards"),
        EngineError::ZeroShards
    );
    assert_eq!(
        EngineBuilder::new()
            .queue_capacity(0)
            .build()
            .expect_err("no capacity"),
        EngineError::ZeroQueueCapacity
    );
    // Restoring without a factory is refused.
    let (donor, _sink) = optwin_engine(2, 100, None);
    donor.submit(&[(1, 0.5)]).expect("engine running");
    donor.flush().expect("no errors");
    let snapshot = donor.snapshot().expect("snapshot-capable");
    donor.shutdown().expect("clean shutdown");
    let err = EngineBuilder::new()
        .shards(2)
        .restore(snapshot.clone())
        .build()
        .expect_err("restore requires a factory");
    assert!(matches!(err, EngineError::InvalidSnapshot(_)));
    assert!(err.to_string().contains("factory"));
    // A factory building a *different* detector kind is refused by name.
    let err = EngineBuilder::new()
        .shards(2)
        .factory(|_| Box::new(optwin::Adwin::with_defaults()) as Box<dyn DriftDetector + Send>)
        .restore(snapshot)
        .build()
        .expect_err("detector kind mismatch");
    assert!(err.to_string().contains("OPTWIN"));
}

/// A custom detector without snapshot support, standing in for downstream
/// detector types outside the shipped line-up (every shipped kind — OPTWIN
/// and all 7 baselines — now serializes its state).
struct Opaque {
    seen: u64,
}

impl DriftDetector for Opaque {
    fn add_element(&mut self, _value: f64) -> optwin::DriftStatus {
        self.seen += 1;
        optwin::DriftStatus::Stable
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "opaque"
    }
    fn elements_seen(&self) -> u64 {
        self.seen
    }
    fn drifts_detected(&self) -> u64 {
        0
    }
}

/// Snapshotting an engine whose detectors cannot serialize state reports
/// which stream is at fault.
#[test]
fn snapshot_unsupported_detectors_are_reported() {
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::new()
        .shards(2)
        .factory(|_| Box::new(Opaque { seen: 0 }) as Box<dyn DriftDetector + Send>)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");
    handle.submit(&[(3, 0.0)]).expect("engine running");
    handle.flush().expect("no errors");
    let err = handle
        .snapshot()
        .expect_err("the custom detector has no snapshot support");
    assert_eq!(
        err,
        EngineError::SnapshotUnsupported {
            stream: 3,
            detector: "opaque".to_string(),
        }
    );
    handle.shutdown().expect("clean shutdown");
}

/// A detector that blocks inside `add_batch` until the test releases it,
/// used to hold a worker busy so queue bounds can be observed
/// deterministically.
struct GateDetector {
    gate: Receiver<()>,
    seen: u64,
}

impl DriftDetector for GateDetector {
    fn add_element(&mut self, _value: f64) -> optwin::DriftStatus {
        self.seen += 1;
        optwin::DriftStatus::Stable
    }
    fn add_batch(&mut self, values: &[f64]) -> optwin::BatchOutcome {
        // Block until released (bounded so a broken test fails instead of
        // hanging forever).
        let _ = self.gate.recv_timeout(Duration::from_secs(30));
        self.seen += values.len() as u64;
        optwin::BatchOutcome::with_len(values.len())
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "gate"
    }
    fn elements_seen(&self) -> u64 {
        self.seen
    }
    fn drifts_detected(&self) -> u64 {
        0
    }
}

/// `try_submit` fails fast — atomically, enqueuing nothing — when a shard
/// queue is at capacity, and `submit`/`flush` error once the engine is shut
/// down.
#[test]
fn try_submit_backpressure_and_shutdown_errors() {
    let (release, gate) = channel::<()>();
    let handle = EngineBuilder::new()
        .shards(1)
        .queue_capacity(4)
        .stream(0, Box::new(GateDetector { gate, seen: 0 }))
        .build()
        .expect("valid engine");

    let batch: Vec<(u64, f64)> = (0..4).map(|_| (0u64, 0.5)).collect();
    // First batch: the worker dequeues it and blocks inside the detector.
    handle.submit(&batch).expect("engine running");
    // Second batch: wait until it occupies the (now otherwise empty) queue.
    while handle.try_submit(&batch) == Err(EngineError::QueueFull) {
        std::thread::yield_now();
    }
    // Queue is full (4/4) and the worker is stuck on batch one: a third
    // batch must be rejected without enqueuing anything.
    assert_eq!(handle.try_submit(&batch), Err(EngineError::QueueFull));
    assert_eq!(handle.try_submit(&[(0, 0.1)]), Err(EngineError::QueueFull));

    // Release both batches and drain.
    release.send(()).expect("worker is waiting");
    release.send(()).expect("worker will wait again");
    handle.flush().expect("no ingestion errors");
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.elements, 8, "exactly the two admitted batches ran");

    // Shutdown: all further operations fail with ChannelClosed, on every
    // clone.
    let clone = handle.clone();
    handle.shutdown().expect("clean shutdown");
    assert_eq!(handle.submit(&batch), Err(EngineError::ChannelClosed));
    assert_eq!(clone.try_submit(&batch), Err(EngineError::ChannelClosed));
    assert_eq!(clone.flush(), Err(EngineError::ChannelClosed));
    assert!(clone.stats().is_err());
    // Idempotent.
    handle.shutdown().expect("second shutdown is a no-op");
}

/// Clones of one handle feed the same engine; per-stream totals add up.
#[test]
fn handle_clones_feed_the_same_engine_from_multiple_threads() {
    let (handle, sink) = optwin_engine(4, 200, None);
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                // Each thread owns its own disjoint stream ids, so per-stream
                // order is preserved no matter how submissions interleave.
                let mut records = Vec::new();
                for i in 0..2_000usize {
                    records.push((100 + t, loss(100 + t, i)));
                    if records.len() == 250 {
                        handle.submit(&records).expect("engine running");
                        records.clear();
                    }
                }
                handle.submit(&records).expect("engine running");
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("no panics");
    }
    handle.flush().expect("no ingestion errors");
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.streams, 4);
    assert_eq!(stats.elements, 8_000);
    handle.shutdown().expect("clean shutdown");
    // Events (if any) all belong to the four streams.
    assert!(sink.drain().iter().all(|e| (100..104).contains(&e.stream)));
}

/// The heterogeneous-fleet spec for a stream: all 8 detector kinds, tiled
/// over the stream ids, with small windows so the run stays fast in debug
/// builds.
fn spec_of(stream: u64) -> DetectorSpec {
    let text = match stream % 8 {
        0 => "optwin:rho=0.5,w_max=600",
        1 => "adwin",
        2 => "ddm",
        3 => "eddm",
        4 => "stepd",
        5 => "ecdd",
        6 => "page_hinkley",
        _ => "kswin:window_size=120,stat_size=25,alpha=0.0001",
    };
    text.parse().expect("valid spec string")
}

/// The `i`-th element of a heterogeneous-fleet stream: every stream
/// degrades at its own drift point; binary-only specs get Bernoulli
/// indicators, the rest real-valued losses.
fn spec_element(stream: u64, i: usize) -> f64 {
    let drift_at = 3_000 + (stream as usize * 211) % 1_200;
    let p = if i < drift_at { 0.06 } else { 0.55 };
    let u = jitter(stream.wrapping_mul(0x1234_5677) ^ i as u64) + 0.5;
    if spec_of(stream).binary_only() {
        f64::from(u < p)
    } else {
        (p + 0.4 * (u - 0.5)).clamp(0.0, 1.0)
    }
}

/// The tentpole acceptance test: a heterogeneous fleet covering **all 8
/// detector kinds** is assembled purely from specs, snapshotted mid-stream
/// through `EngineHandle::snapshot()`, and restored through
/// `EngineBuilder::restore()` with **no factory and no `register_stream`
/// calls** — the v2 snapshot is self-describing — after which the restored
/// engine produces bit-exact identical remaining events.
#[test]
fn heterogeneous_spec_fleet_restores_without_any_factory() {
    const STREAMS: u64 = 16; // two streams per detector kind
    const TOTAL: usize = 6_000;
    const CUT: usize = 3_500; // past some per-stream drift points, before others

    let build = |shards: usize| -> (EngineHandle, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let mut builder = EngineBuilder::new()
            .shards(shards)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
        for stream in 0..STREAMS {
            builder = builder.stream_spec(stream, spec_of(stream));
        }
        (builder.build().expect("valid engine"), sink)
    };
    let feed = |handle: &EngineHandle, from: usize, to: usize| {
        let mut records = Vec::new();
        for start in (from..to).step_by(200) {
            let end = (start + 200).min(to);
            records.clear();
            for stream in 0..STREAMS {
                for i in start..end {
                    records.push((stream, spec_element(stream, i)));
                }
            }
            handle.submit(&records).expect("engine running");
        }
        handle.flush().expect("no ingestion errors");
    };

    // Uninterrupted reference.
    let (reference, reference_sink) = build(test_shards());
    feed(&reference, 0, TOTAL);
    let reference_events = canonical(reference_sink.drain());
    reference.shutdown().expect("clean shutdown");

    // Interrupted run: live streams are introspectable by spec, the
    // snapshot is self-describing.
    let (original, original_sink) = build(test_shards());
    for stream in 0..STREAMS {
        assert_eq!(
            original.stream_spec(stream).expect("engine running"),
            Some(spec_of(stream)),
            "stream {stream} spec introspection"
        );
    }
    feed(&original, 0, CUT);
    let early_events = canonical(original_sink.drain());
    let snapshot = original.snapshot().expect("all 8 kinds snapshot");
    original.shutdown().expect("clean shutdown");
    assert_eq!(snapshot.stream_count(), STREAMS as usize);
    assert!(snapshot.is_self_describing());
    assert!(
        snapshot.records_placement(),
        "v3 snapshots record placement"
    );

    // Restore through JSON into a differently-sharded engine with NO
    // factory, NO default spec, and NO stream registration of any kind.
    let snapshot = EngineSnapshot::from_json(&snapshot.to_json()).expect("well-formed JSON");
    let restored_sink = Arc::new(MemorySink::new());
    let restored = EngineBuilder::new()
        .shards(5)
        .sink(Arc::clone(&restored_sink) as Arc<dyn EventSink>)
        .restore(snapshot)
        .build()
        .expect("self-describing snapshot needs no factory");
    // The restored fleet is still introspectable — specs survived the trip.
    for stream in 0..STREAMS {
        assert_eq!(
            restored.stream_spec(stream).expect("engine running"),
            Some(spec_of(stream))
        );
    }
    feed(&restored, CUT, TOTAL);
    let late_events = canonical(restored_sink.drain());
    restored.shutdown().expect("clean shutdown");

    let mut stitched = early_events;
    stitched.extend(late_events);
    assert_eq!(
        canonical(stitched),
        reference_events,
        "restored heterogeneous fleet must resume with identical decisions"
    );
    // Sanity: the workload produced detections on both sides of the cut and
    // on most streams (every stream has one genuine drift).
    assert!(
        reference_events.iter().any(|e| (e.seq as usize) < CUT)
            && reference_events.iter().any(|e| (e.seq as usize) >= CUT),
        "test workload should drift on both sides of the cut"
    );
    let streams_with_detection: std::collections::HashSet<u64> =
        reference_events.iter().map(|e| e.stream).collect();
    assert!(
        streams_with_detection.len() >= 12,
        "only {} of 16 streams saw a detection",
        streams_with_detection.len()
    );
}

/// v1 snapshots (and v2 snapshots of closure-factory streams, which embed
/// no specs) still load — behind a factory, exactly as before the v2
/// format.
#[test]
fn spec_less_snapshots_still_restore_behind_a_factory() {
    let (donor, _sink) = optwin_engine(2, 200, None);
    donor
        .submit(&[(1, 0.1), (2, 0.2), (1, 0.3)])
        .expect("engine running");
    donor.flush().expect("no errors");
    let snapshot = donor.snapshot().expect("snapshot-capable");
    donor.shutdown().expect("clean shutdown");
    // Closure-factory streams record no spec.
    assert!(!snapshot.is_self_describing());
    assert!(snapshot.streams.iter().all(|s| s.spec.is_none()));

    // Downgrade the wire format to v1 (the v1 payload is the v3 payload
    // minus the spec entries — already absent/null here — and the shard
    // placements).
    let mut downgraded = snapshot.clone();
    downgraded.version = 1;
    for stream in &mut downgraded.streams {
        stream.shard = None;
    }
    let v1 = EngineSnapshot::from_json(&downgraded.to_json()).expect("v1 parses");
    assert_eq!(v1.version, 1);
    assert!(!v1.records_placement());

    // Without a factory the restore is refused, naming the problem.
    let err = EngineBuilder::new()
        .shards(2)
        .restore(v1.clone())
        .build()
        .expect_err("spec-less restore requires a factory");
    assert!(err.to_string().contains("spec"), "{err}");
    assert!(err.to_string().contains("factory"), "{err}");

    // Behind a factory it restores fine and resumes.
    let (restored, _restored_sink) = optwin_engine(3, 200, Some(v1));
    let stats = restored.stats().expect("engine running");
    assert_eq!(stats.streams, 2);
    assert_eq!(stats.elements, 3);
    restored.shutdown().expect("clean shutdown");
}

/// A default spec auto-registers unknown streams (recording the spec), and
/// `register_stream_spec` validates before it registers.
#[test]
fn default_spec_and_register_stream_spec() {
    let spec: DetectorSpec = "adwin:delta=0.01".parse().expect("valid spec");
    let sink = Arc::new(MemorySink::new());
    let handle = EngineBuilder::new()
        .shards(2)
        .default_spec(spec.clone())
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .expect("valid engine");
    assert!(handle.has_factory());

    // Auto-registration on first sight records the default spec.
    handle
        .submit(&[(7, 0.0), (8, 1.0)])
        .expect("engine running");
    handle.flush().expect("no errors");
    assert_eq!(handle.stream_spec(7).expect("running"), Some(spec.clone()));
    let stats = handle
        .stream_stats(7)
        .expect("running")
        .expect("registered");
    assert_eq!(stats.detector, "ADWIN");
    assert_eq!(stats.spec, Some(spec.clone()));

    // Declarative runtime registration with a different spec.
    let kswin: DetectorSpec = "kswin:window_size=90,stat_size=20".parse().expect("valid");
    handle
        .register_stream_spec(42, kswin.clone())
        .expect("valid spec registers");
    assert_eq!(handle.stream_spec(42).expect("running"), Some(kswin));
    // Unknown stream / spec-less queries report None.
    assert_eq!(handle.stream_spec(999).expect("running"), None);

    // An invalid spec is rejected before anything is registered.
    let bad = DetectorSpec::Adwin {
        config: optwin::baselines::AdwinConfig {
            delta: 0.0,
            ..optwin::baselines::AdwinConfig::default()
        },
    };
    assert!(matches!(
        handle.register_stream_spec(43, bad),
        Err(EngineError::InvalidSpec(_))
    ));
    assert_eq!(handle.stream_spec(43).expect("running"), None);

    // A degenerate default spec is rejected at build time.
    let err = EngineBuilder::new()
        .shards(1)
        .default_spec(DetectorSpec::Adwin {
            config: optwin::baselines::AdwinConfig {
                delta: 0.0,
                ..optwin::baselines::AdwinConfig::default()
            },
        })
        .build()
        .expect_err("invalid default spec");
    assert!(matches!(err, EngineError::InvalidSpec(_)));
    handle.shutdown().expect("clean shutdown");
}

mod snapshot_property {
    use super::*;
    use optwin::SnapshotEncoding;
    use proptest::prelude::*;

    /// One stream per `DetectorSpec` kind, with small windows so the
    /// property stays fast in debug builds.
    fn prop_spec_of(stream: u64) -> DetectorSpec {
        let text = match stream % 8 {
            0 => "optwin:rho=0.5,w_max=64",
            1 => "adwin",
            2 => "ddm",
            3 => "eddm",
            4 => "stepd",
            5 => "ecdd",
            6 => "page_hinkley",
            _ => "kswin:window_size=60,stat_size=15,alpha=0.0001",
        };
        text.parse().expect("valid spec string")
    }

    /// An 8-kind fleet engine: freshly spec-registered, or restored from a
    /// snapshot with no factory (the snapshot is self-describing).
    fn fleet_engine(
        shards: usize,
        restore: Option<EngineSnapshot>,
    ) -> (EngineHandle, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let mut builder = EngineBuilder::new()
            .shards(shards)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
        match restore {
            Some(snapshot) => builder = builder.restore(snapshot),
            None => {
                for stream in 0..8u64 {
                    builder = builder.stream_spec(stream, prop_spec_of(stream));
                }
            }
        }
        (builder.build().expect("valid engine"), sink)
    }

    /// The generated value for stream `s` at position `i`: binary-only
    /// detectors get a thresholded indicator, the rest the raw value.
    fn fleet_records(values: &[f64]) -> Vec<(u64, f64)> {
        let mut records = Vec::with_capacity(values.len() * 8);
        for (i, &v) in values.iter().enumerate() {
            for stream in 0..8u64 {
                let x = if prop_spec_of(stream).binary_only() {
                    f64::from(v > 0.5 || (i + stream as usize).is_multiple_of(7))
                } else {
                    v
                };
                records.push((stream, x));
            }
        }
        records
    }

    proptest! {
        /// Snapshot → JSON → restore at an arbitrary cut point of an
        /// arbitrary bounded stream — over a fleet covering **all 8
        /// detector kinds**, in **both** the v3-JSON and the v4-binary wire
        /// layout — reproduces the uninterrupted engine's remaining events
        /// exactly.
        #[test]
        fn snapshot_round_trip_preserves_remaining_events(
            values in proptest::collection::vec(0.0f64..=1.0, 50..400),
            cut_fraction in 0.0f64..=1.0,
            shards in 1usize..4,
        ) {
            let cut = ((values.len() as f64) * cut_fraction) as usize;
            let cut = cut.min(values.len());
            let records = fleet_records(&values);
            let record_cut = cut * 8;

            // Uninterrupted reference (shared by both encodings).
            let (reference, reference_sink) = fleet_engine(shards, None);
            reference.submit(&records).expect("engine running");
            reference.flush().expect("no errors");
            let all_events = canonical(reference_sink.drain());
            reference.shutdown().expect("clean shutdown");

            for encoding in [SnapshotEncoding::Json, SnapshotEncoding::Binary] {
                // Interrupted at `cut`.
                let (original, original_sink) = fleet_engine(shards, None);
                original.submit(&records[..record_cut]).expect("engine running");
                original.flush().expect("no errors");
                let early = original_sink.drain();
                let snapshot = original.snapshot_with(encoding).expect("snapshot-capable");
                original.shutdown().expect("clean shutdown");
                let expected_version =
                    if encoding == SnapshotEncoding::Binary { 4 } else { 3 };
                prop_assert_eq!(snapshot.version, expected_version);
                prop_assert!(snapshot.is_self_describing());

                let snapshot = EngineSnapshot::from_json(&snapshot.to_json())
                    .expect("well-formed JSON");
                let (restored, restored_sink) = fleet_engine(shards, Some(snapshot));
                restored.submit(&records[record_cut..]).expect("engine running");
                restored.flush().expect("no errors");
                let late = restored_sink.drain();
                restored.shutdown().expect("clean shutdown");

                let mut stitched = early;
                stitched.extend(late);
                prop_assert!(
                    canonical(stitched) == all_events,
                    "stitched events diverge under {encoding:?} at cut {cut}"
                );
            }
        }
    }
}
